//! Per-register clock-skew optimization (the Fishburn formulation on top
//! of the TBF register model).
//!
//! The skewed model lets DFF `i` sample at `kT + s_i` instead of the
//! nominal edge. Every register-to-register path of raw delay `k` (source
//! clock-to-Q included) then has *effective* delay `k + s_source − s_sink`,
//! and the machine behaves like steady state at any period `T` that makes
//! every effective delay land in `(0, T]` — all shifts collapse to 1.
//! That structural condition is a system of difference constraints over
//! the skew vector:
//!
//! ```text
//! setup:  s_j − s_i ≤ T − k_max(j, i)        (longest raw path j → i)
//! hold:   s_i − s_j ≤ k_min(j, i)            (shortest, at its variation minimum)
//! bound:  |s_i| ≤ B                          (the --skew-bound magnitude cap)
//! ```
//!
//! with primary inputs and outputs clocked by a zero-skew environment
//! node. For a fixed `T` feasibility is a linear program (solved by the
//! workspace simplex, whose pivots surface as kernel counters); the tier
//! binary-searches the minimum feasible **integer-milli** period — skews
//! are annotated in the same fixed-point milli grid as every other delay,
//! and over integer skews the optimum is itself an integer — then
//! certifies the boundary exactly with an integer Bellman–Ford pass and
//! extracts the shortest-distance witness.
//!
//! The structural optimum ignores logical falsity (a never-sensitized
//! path still constrains it), so the reported skew-optimal bound is
//! `min(zero-skew MCT, MCT of the witness-annotated machine)` — the
//! witness machine is re-swept through the exact TBF analysis whenever
//! the LP period beats the zero-skew bound. Soundness: LP-feasible at `T`
//! ⇒ every effective delay ≤ `T` ⇒ every shift is 1 at τ ≥ `T` ⇒ the
//! skewed machine equals steady state there, so its true MCT can only be
//! smaller.

use crate::analyzer::{MctAnalyzer, MctOptions, MctReport};
use crate::error::MctError;
use mct_lp::{LpOutcome, Rat, Simplex};
use mct_netlist::{FsmView, SinkKind, Time};
use mct_tbf::ConeExtractor;
use std::collections::HashMap;

/// Result of the clock-skew optimization tier.
///
/// All fields are deterministic functions of the circuit and the semantic
/// options — the report is part of the bit-identity contract.
#[derive(Clone, PartialEq, Debug)]
pub struct SkewReport {
    /// Exact MCT upper bound of the machine with every skew forced to
    /// zero, in milli-units (reuses the main sweep when the circuit
    /// carries no annotations).
    pub zero_skew_bound: Rat,
    /// Exact MCT upper bound under the optimized skews, in milli-units:
    /// `min(zero_skew_bound, bound of the witness-annotated machine)`.
    pub optimal_bound: Rat,
    /// Minimum structurally feasible period found by the LP binary search,
    /// in milli-units (integer — see the module docs).
    pub lp_period_millis: i64,
    /// The certified skew witness, one entry per flip-flop in
    /// [`mct_netlist::Circuit::dffs`] order, in milli-units. All zeros
    /// when skewing cannot beat the zero-skew bound.
    pub witness_millis: Vec<i64>,
    /// Whether the optimal bound is strictly below the zero-skew bound.
    pub improved: bool,
    /// The magnitude cap `B` the search ran under, in milli-units.
    pub skew_bound_millis: i64,
}

/// One aggregated clock-graph edge: the longest and (variation-scaled)
/// shortest raw delays between a source and a capture clock node.
struct Hull {
    k_max: i64,
    k_min: i64,
}

/// Runs the tier and attaches its [`SkewReport`] (and LP kernel counters)
/// to `report`. Deterministic in `(view, opts, report.bound_exact)`, so
/// the monolithic and decomposed paths produce identical attachments.
pub(crate) fn run_tier(
    view: &FsmView<'_>,
    opts: &MctOptions,
    report: &mut MctReport,
) -> Result<(), MctError> {
    let circuit = view.circuit();
    let num_regs = view.num_state_bits();

    // Zero-skew baseline: the main sweep already is it unless the circuit
    // carries annotations, in which case a zeroed clone is re-analyzed.
    let zero_skew_bound = if view.has_skew() {
        let mut zeroed = circuit.clone();
        for q in zeroed.dffs() {
            zeroed.set_dff_skew(q, Time::ZERO).expect("dff id");
        }
        let sub = MctAnalyzer::new(&zeroed)?.run(&sub_opts(opts))?;
        report.kernel.absorb(&sub.kernel);
        sub.bound_exact
    } else {
        report.bound_exact
    };

    // Aggregate per-(source, capture) raw-delay hulls from the per-sink
    // class walks. Clock node ids: 0..num_regs are the registers, the last
    // is the zero-skew environment (inputs and outputs).
    let env = num_regs;
    let extractor = ConeExtractor::new(view).with_node_limit(opts.cone_node_limit);
    let mut hulls: HashMap<(usize, usize), Hull> = HashMap::new();
    let mut t_floor = 1i64; // periods are positive; self-loops raise this
    for sink in view.sinks() {
        let snk = match sink.kind {
            SinkKind::NextState { index } => index,
            SinkKind::Output { .. } => env,
        };
        for class in extractor.delay_classes(&[sink.net])? {
            let src = if class.leaf < num_regs {
                class.leaf
            } else {
                env
            };
            let k_min = match opts.delay_variation {
                Some((num, den)) => (class.delay * num).div_euclid(den),
                None => class.delay,
            };
            if src == snk {
                // The skews cancel: the edge is a hard period floor.
                t_floor = t_floor.max(class.delay);
                continue;
            }
            hulls
                .entry((src, snk))
                .and_modify(|h| {
                    h.k_max = h.k_max.max(class.delay);
                    h.k_min = h.k_min.min(k_min);
                })
                .or_insert(Hull {
                    k_max: class.delay,
                    k_min,
                });
        }
    }
    let mut edges: Vec<(usize, usize, Hull)> =
        hulls.into_iter().map(|((s, k), h)| (s, k, h)).collect();
    edges.sort_by_key(|&(s, k, _)| (s, k));

    let structural_l = edges
        .iter()
        .map(|(_, _, h)| h.k_max)
        .max()
        .unwrap_or(0)
        .max(t_floor);
    let bound_b = match opts.skew_bound {
        Some(b) => (b * 1000.0).round() as i64,
        None => structural_l,
    }
    .max(0);

    if num_regs == 0 || edges.is_empty() {
        // Nothing to skew: the structural floor (combinational paths
        // through the environment) is the LP answer and the zero-skew
        // bound is already optimal.
        report.skew = Some(SkewReport {
            zero_skew_bound,
            optimal_bound: zero_skew_bound,
            lp_period_millis: t_floor.max(1),
            witness_millis: vec![0; num_regs],
            improved: false,
            skew_bound_millis: bound_b,
        });
        return Ok(());
    }

    // Binary search the minimum feasible integer period with the simplex
    // feasibility oracle, then certify the boundary exactly.
    let num_nodes = num_regs + 1;
    let mut pivots = 0u64;
    let mut cuts = 0u64;
    let mut probe = |t: i64| -> bool {
        let (feasible, p) = lp_feasible(t, num_nodes, env, bound_b, &edges);
        pivots += p;
        if !feasible {
            cuts += 1;
        }
        feasible
    };
    let mut t_star = if probe(t_floor) {
        t_floor
    } else {
        let (mut lo, mut hi) = (t_floor, structural_l);
        debug_assert!(probe(hi), "zero skew is feasible at the structural L");
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if probe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    // Exact certification (and f64 repair, if the oracle mis-bracketed):
    // feasible at t_star, infeasible at t_star − 1.
    while bf_feasible(t_star, num_nodes, env, bound_b, &edges).is_none() {
        t_star += 1;
    }
    while t_star > t_floor && bf_feasible(t_star - 1, num_nodes, env, bound_b, &edges).is_some() {
        t_star -= 1;
    }
    let witness =
        bf_feasible(t_star, num_nodes, env, bound_b, &edges).expect("certified feasible above");
    let witness: Vec<i64> = witness[..num_regs].to_vec();

    // Structural bound beats the zero-skew MCT? Re-sweep the witness
    // machine exactly; otherwise skewing cannot help (the LP period is an
    // upper bound on the witness machine's MCT, so a period at or above
    // the zero-skew bound proves nothing better).
    let mut optimal_bound = zero_skew_bound;
    let mut final_witness = vec![0i64; num_regs];
    if Rat::new(t_star, 1) < zero_skew_bound {
        let mut annotated = circuit.clone();
        for (q, &s) in annotated.dffs().into_iter().zip(&witness) {
            annotated
                .set_dff_skew(q, Time::from_millis(s))
                .expect("dff id");
        }
        let sub = MctAnalyzer::new(&annotated)?.run(&sub_opts(opts))?;
        report.kernel.absorb(&sub.kernel);
        if sub.bound_exact < zero_skew_bound {
            optimal_bound = sub.bound_exact;
            final_witness = witness;
        }
    }

    report.kernel.skew_lp_iterations += pivots;
    report.kernel.skew_lp_cuts += cuts;
    report.skew = Some(SkewReport {
        zero_skew_bound,
        optimal_bound,
        lp_period_millis: t_star,
        improved: optimal_bound < zero_skew_bound,
        witness_millis: final_witness,
        skew_bound_millis: bound_b,
    });
    Ok(())
}

/// The options the tier's sub-analyses (zeroed baseline, witness machine)
/// run under: same semantics, no recursion, no nondeterministic budget.
fn sub_opts(opts: &MctOptions) -> MctOptions {
    MctOptions {
        skew: false,
        decompose: false,
        num_threads: 1,
        exhaustive_floor: None,
        time_budget_ms: None,
        ..opts.clone()
    }
}

/// Simplex feasibility of the skew system at period `t`, plus the pivot
/// count. Variables are the shifted skews `s_i + B ∈ [0, 2B]` (the
/// environment pinned at `B`), so the difference rows carry over
/// unchanged.
fn lp_feasible(
    t: i64,
    num_nodes: usize,
    env: usize,
    bound_b: i64,
    edges: &[(usize, usize, Hull)],
) -> (bool, u64) {
    let mut lp = Simplex::new(num_nodes);
    let mut diff = |j: usize, i: usize, c: i64| {
        let mut row = vec![0.0; num_nodes];
        row[j] = 1.0;
        row[i] = -1.0;
        lp.add_le(&row, c as f64);
    };
    for &(src, snk, ref h) in edges {
        diff(src, snk, t - h.k_max); // setup
        diff(snk, src, h.k_min); // hold
    }
    for v in 0..num_nodes {
        if v == env {
            lp.add_bounds(v, bound_b as f64, bound_b as f64);
        } else {
            lp.add_bounds(v, 0.0, 2.0 * bound_b as f64);
        }
    }
    let (outcome, pivots) = lp.solve_counted();
    (matches!(outcome, LpOutcome::Optimal { .. }), pivots)
}

/// Exact feasibility of the skew system at period `t` by Bellmann-Ford
/// negative-cycle detection over the difference-constraint graph. Returns
/// the shortest-distance witness (normalized to a zero environment skew)
/// when feasible.
fn bf_feasible(
    t: i64,
    num_nodes: usize,
    env: usize,
    bound_b: i64,
    edges: &[(usize, usize, Hull)],
) -> Option<Vec<i64>> {
    // A constraint `s_to − s_from ≤ w` is the relaxation edge
    // `d_to ≤ d_from + w`.
    let mut rows: Vec<(usize, usize, i128)> = Vec::with_capacity(edges.len() * 2 + num_nodes * 2);
    for &(src, snk, ref h) in edges {
        rows.push((snk, src, (t - h.k_max) as i128)); // setup: s_src − s_snk ≤ t − k_max
        rows.push((src, snk, h.k_min as i128)); // hold: s_snk − s_src ≤ k_min
    }
    for v in 0..num_nodes {
        if v != env {
            rows.push((env, v, bound_b as i128)); // s_v − s_env ≤ B
            rows.push((v, env, bound_b as i128)); // s_env − s_v ≤ B
        }
    }
    // Virtual-source Bellman–Ford: all distances start at 0.
    let mut dist = vec![0i128; num_nodes];
    for _ in 0..num_nodes {
        let mut changed = false;
        for &(from, to, w) in &rows {
            if dist[from] + w < dist[to] {
                dist[to] = dist[from] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &(from, to, w) in &rows {
        if dist[from] + w < dist[to] {
            return None; // negative cycle: infeasible at this period
        }
    }
    let base = dist[env];
    Some(dist.iter().map(|&d| (d - base) as i64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_netlist::{Circuit, GateKind};

    fn t(v: f64) -> Time {
        Time::from_f64(v)
    }

    /// Ring q0 −(NOT, 5)→ q1 −(BUF, 1)→ q0: zero-skew MCT is 5, but
    /// skewing q1 by +2 balances both paths at 3.
    fn unbalanced_ring() -> Circuit {
        let mut c = Circuit::new("unbalanced");
        let q0 = c.add_dff("q0", false, Time::ZERO);
        let q1 = c.add_dff("q1", false, Time::ZERO);
        let n1 = c.add_gate("n1", GateKind::Not, &[q0], t(5.0));
        let n0 = c.add_gate("n0", GateKind::Buf, &[q1], t(1.0));
        c.connect_dff_data("q1", n1).unwrap();
        c.connect_dff_data("q0", n0).unwrap();
        c.set_output(q0);
        c
    }

    fn skew_opts() -> MctOptions {
        MctOptions {
            skew: true,
            ..MctOptions::fixed_delays()
        }
    }

    #[test]
    fn unbalanced_ring_improves_by_exactly_two() {
        let c = unbalanced_ring();
        let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
        let skew = report.skew.as_ref().expect("tier ran");
        assert_eq!(skew.zero_skew_bound, Rat::new(5000, 1), "{skew:?}");
        assert_eq!(skew.lp_period_millis, 3000);
        assert_eq!(skew.optimal_bound, Rat::new(3000, 1), "{skew:?}");
        assert!(skew.improved);
        // Witness balances the ring: s1 − s0 = 2.0.
        assert_eq!(skew.witness_millis.len(), 2);
        assert_eq!(skew.witness_millis[1] - skew.witness_millis[0], 2000);
        // Exact margin: 5 − 3 = 2 time units.
        let margin = skew.zero_skew_bound - skew.optimal_bound;
        assert_eq!(margin, Rat::new(2000, 1));
    }

    #[test]
    fn symmetric_ring_cannot_improve() {
        // Both paths already equal: skew moves one constraint up exactly as
        // much as it moves the other down.
        let mut c = Circuit::new("symmetric");
        let q0 = c.add_dff("q0", false, Time::ZERO);
        let q1 = c.add_dff("q1", false, Time::ZERO);
        let n1 = c.add_gate("n1", GateKind::Not, &[q0], t(3.0));
        let n0 = c.add_gate("n0", GateKind::Buf, &[q1], t(3.0));
        c.connect_dff_data("q1", n1).unwrap();
        c.connect_dff_data("q0", n0).unwrap();
        c.set_output(q0);
        let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
        let skew = report.skew.as_ref().expect("tier ran");
        assert_eq!(skew.optimal_bound, skew.zero_skew_bound, "{skew:?}");
        assert!(!skew.improved);
        assert_eq!(skew.witness_millis, vec![0, 0]);
        assert_eq!(skew.lp_period_millis, 3000);
    }

    #[test]
    fn self_loop_floors_the_period() {
        // A register feeding itself: its own skew cancels, so no skew
        // assignment can beat the loop delay.
        let mut c = Circuit::new("selfloop");
        let q = c.add_dff("q", false, Time::ZERO);
        let nq = c.add_gate("nq", GateKind::Not, &[q], t(4.0));
        c.connect_dff_data("q", nq).unwrap();
        c.set_output(q);
        let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
        let skew = report.skew.as_ref().expect("tier ran");
        assert_eq!(skew.lp_period_millis, 4000);
        assert!(!skew.improved);
    }

    #[test]
    fn skew_bound_caps_the_gain() {
        // The unbalanced ring needs |s1| = 2.0 for the full gain; capping
        // at 1.0 only reaches T = 4 (paths 5 − 1 and 1 + 1 → max 4).
        let c = unbalanced_ring();
        let opts = MctOptions {
            skew_bound: Some(1.0),
            ..skew_opts()
        };
        let report = MctAnalyzer::new(&c).unwrap().run(&opts).unwrap();
        let skew = report.skew.as_ref().expect("tier ran");
        assert_eq!(skew.skew_bound_millis, 1000);
        assert_eq!(skew.lp_period_millis, 4000);
        assert_eq!(skew.optimal_bound, Rat::new(4000, 1), "{skew:?}");
    }

    #[test]
    fn annotated_circuit_reports_both_bounds() {
        // The witness pre-annotated by hand: the main sweep is the skewed
        // machine, the tier recovers the zero-skew baseline from a zeroed
        // clone, and the report's own bound matches the optimal one.
        let mut c = unbalanced_ring();
        let q1 = c.lookup("q1").unwrap();
        c.set_dff_skew(q1, t(2.0)).unwrap();
        let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
        assert_eq!(report.bound_exact, Rat::new(3000, 1));
        let skew = report.skew.as_ref().expect("tier ran");
        assert_eq!(skew.zero_skew_bound, Rat::new(5000, 1));
        assert_eq!(skew.optimal_bound, Rat::new(3000, 1));
        assert!(skew.improved);
    }

    #[test]
    fn hold_violating_annotation_rejected() {
        // Skewing q1 by +6 makes the 5-delay path's effective delay −1.
        let mut c = unbalanced_ring();
        let q1 = c.lookup("q1").unwrap();
        c.set_dff_skew(q1, t(6.0)).unwrap();
        let err = MctAnalyzer::new(&c)
            .unwrap()
            .run(&MctOptions::fixed_delays())
            .unwrap_err();
        assert!(matches!(err, MctError::SkewHoldViolation { .. }), "{err:?}");
    }

    #[test]
    fn kernel_counters_populated() {
        let c = unbalanced_ring();
        let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
        assert!(report.kernel.skew_lp_iterations > 0, "{:?}", report.kernel);
        assert!(report.kernel.skew_lp_cuts > 0, "{:?}", report.kernel);
    }
}
