//! The *exact* equivalence check of Section 6: product-machine reachability.
//!
//! The paper notes that deciding `y(n, τ) = y(n, L)` for all `n` is exactly
//! machine equivalence, and adopts the state sufficient condition `C_x`
//! because explicit minimization "takes too much memory for most practical
//! circuits". With BDDs a symbolic product construction is affordable for
//! the smaller machines: the discretized machine at period `τ` becomes an
//! ordinary FSM over an *expanded* state — the last `m` state vectors and
//! the last `m_u − 1` input vectors — running in lockstep with the
//! steady-state machine on shared fresh inputs. The period is valid **iff**
//! no reachable product state distinguishes any primary output.
//!
//! Unlike `C_x`, this accepts machines whose perturbed state sequence is
//! merely *output-equivalent* to the steady one (e.g. a lagging register
//! that no output observes), and it subsumes the reachability restriction:
//! the product reachable set *is* the exact set of sequential don't-cares.
//!
//! The expanded state has `ns·m + np·(m_u − 1) + ns` bits, so the check is
//! gated by a configurable bit budget.

use crate::decision::DecisionOutcome;
use crate::error::MctError;
use mct_bdd::{Bdd, BddManager, Var, VarSet};
use mct_netlist::FsmView;
use mct_tbf::{DiscreteMachine, TimedVar, TimedVarTable};

/// Runs the exact product-machine equivalence check for one discretized
/// machine against the steady-state machine.
///
/// Returns [`DecisionOutcome::Valid`] iff the sampled I/O behaviour at this
/// shift assignment equals steady-state behaviour from the circuit's
/// initial state for *every* input sequence (pre-initial input history is
/// adversarial).
///
/// # Errors
///
/// [`MctError::ProductTooLarge`] when the expanded product state exceeds
/// `max_product_bits`.
pub fn decide_exact(
    view: &FsmView<'_>,
    manager: &mut BddManager,
    table: &mut TimedVarTable,
    machine: &DiscreteMachine,
    steady: &DiscreteMachine,
    max_product_bits: usize,
) -> Result<DecisionOutcome, MctError> {
    decide_exact_detail(view, manager, table, machine, steady, max_product_bits)
        .map(|run| run.outcome)
}

/// Result of [`decide_exact_detail`]: the outcome plus the fixpoint
/// iteration at which divergence first became reachable.
///
/// The iteration index makes per-cone exact verdicts mergeable: on a
/// decomposed machine the monolithic check reports the lowest-indexed
/// diverging output of the *earliest* diverging fixpoint frontier, so the
/// recombined diagnostic must order cone verdicts by `(bad_iteration,
/// parent output index)`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ExactRun {
    /// The equivalence verdict.
    pub outcome: DecisionOutcome,
    /// Fixpoint iteration (0 = the initial set, before any image) at which
    /// the diverging output became reachable; `None` when valid.
    pub bad_iteration: Option<u64>,
}

/// History depths (`m_state`, `m_input`) referenced by a machine's
/// supports, as used for the product-state layout and the bit budget.
///
/// # Errors
///
/// [`MctError::UnsupportedMachineVar`] on any non-`Shifted` variable.
pub(crate) fn history_depths(
    ns: usize,
    manager: &mut BddManager,
    table: &TimedVarTable,
    machine: &DiscreteMachine,
) -> Result<(i64, i64), MctError> {
    let mut m_state = 1i64;
    let mut m_input = 1i64;
    for &f in machine.next_state.iter().chain(&machine.outputs) {
        for v in manager.support(f) {
            match table.timed_var(v) {
                Some(TimedVar::Shifted { leaf, shift }) if leaf < ns => {
                    m_state = m_state.max(shift);
                }
                Some(TimedVar::Shifted { shift, .. }) => {
                    m_input = m_input.max(shift);
                }
                other => {
                    return Err(MctError::UnsupportedMachineVar {
                        var: format!("{other:?}"),
                    })
                }
            }
        }
    }
    Ok((m_state, m_input))
}

/// The product-state width for given leaf counts and history depths.
pub(crate) fn product_bits(ns: usize, np: usize, m_state: i64, m_input: i64) -> usize {
    ns * m_state as usize + np * (m_input as usize - 1) + ns
}

pub(crate) fn decide_exact_detail(
    view: &FsmView<'_>,
    manager: &mut BddManager,
    table: &mut TimedVarTable,
    machine: &DiscreteMachine,
    steady: &DiscreteMachine,
    max_product_bits: usize,
) -> Result<ExactRun, MctError> {
    let ns = view.num_state_bits();
    let np = view.num_input_bits();
    let init = view.circuit().initial_state();

    // History depths actually referenced by the machine.
    let (m_state, m_input) = history_depths(ns, manager, table, machine)?;
    let bits = product_bits(ns, np, m_state, m_input);
    if bits > max_product_bits {
        return Err(MctError::ProductTooLarge {
            bits,
            cap: max_product_bits,
        });
    }

    // Current-state variable layout (all already in the machine's own
    // coordinates, so the machine BDDs need no re-mapping):
    //   state history slot  (ℓ, d), d ∈ 1..=m_state  ↦ Shifted{ℓ, d}
    //   input history slot  (ℓ, d), d ∈ 2..=m_input  ↦ Shifted{ℓ, d}
    //   steady copy x̂(n−1)                            ↦ Shifted{state ℓ, 0}
    //   fresh input w = u(n−1)                        ↦ Shifted{input ℓ, 1}
    #[derive(Clone, Copy)]
    struct Slot {
        leaf: usize,
        depth: i64,
        /// Whether this is the steady-machine copy (depth 0 state slots).
        current: TimedVar,
    }
    let mut slots: Vec<Slot> = Vec::new();
    for leaf in 0..ns {
        for depth in 1..=m_state {
            slots.push(Slot {
                leaf,
                depth,
                current: TimedVar::Shifted { leaf, shift: depth },
            });
        }
    }
    for leaf in ns..ns + np {
        for depth in 2..=m_input {
            slots.push(Slot {
                leaf,
                depth,
                current: TimedVar::Shifted { leaf, shift: depth },
            });
        }
    }
    for leaf in 0..ns {
        slots.push(Slot {
            leaf,
            depth: 0,
            current: TimedVar::Shifted { leaf, shift: 0 },
        });
    }

    // The steady machine's functions re-based onto the x̂ copy variables.
    let steady_remap: Vec<(Var, Bdd)> = (0..ns)
        .map(|leaf| {
            let from = table.var(TimedVar::Shifted { leaf, shift: 1 });
            let to = table.var(TimedVar::Shifted { leaf, shift: 0 });
            let g = manager.var(to);
            (from, g)
        })
        .collect();
    let steady_next: Vec<Bdd> = steady
        .next_state
        .iter()
        .map(|&f| manager.vector_compose(f, &steady_remap))
        .collect();
    let steady_out: Vec<Bdd> = steady
        .outputs
        .iter()
        .map(|&f| manager.vector_compose(f, &steady_remap))
        .collect();

    // Next-value function of every slot, over current vars + fresh inputs.
    let next_fn = |manager: &mut BddManager, table: &mut TimedVarTable, slot: &Slot| -> Bdd {
        if slot.depth == 0 {
            steady_next[slot.leaf]
        } else if slot.depth == 1 {
            debug_assert!(slot.leaf < ns);
            machine.next_state[slot.leaf]
        } else if slot.leaf < ns {
            let v = table.var(TimedVar::Shifted {
                leaf: slot.leaf,
                shift: slot.depth - 1,
            });
            manager.var(v)
        } else {
            // Input history: slot d receives u one cycle fresher; d = 2
            // receives the fresh input itself.
            let v = table.var(TimedVar::Shifted {
                leaf: slot.leaf,
                shift: slot.depth - 1,
            });
            manager.var(v)
        }
    };

    // Monolithic transition relation.
    let mut trans = manager.one();
    for slot in &slots {
        let primed = table.var(TimedVar::Primed {
            leaf: slot.leaf,
            depth: slot.depth,
        });
        let f = next_fn(manager, table, slot);
        let pv = manager.var(primed);
        let bit = manager.xnor(pv, f);
        trans = manager.and(trans, bit);
    }

    // Initial set: every state-history slot and the steady copy hold the
    // initial values; input-history slots are adversarial (free).
    let mut reached = manager.one();
    for slot in &slots {
        if slot.leaf < ns {
            let v = table.var(slot.current);
            let lit = manager.literal(v, init[slot.leaf]);
            reached = manager.and(reached, lit);
        }
    }

    // Image computation machinery. The quantified set is fixed across the
    // fixpoint, so it is sorted/deduplicated once here rather than per
    // image (see [`VarSet`]).
    let mut quantified: Vec<Var> = slots.iter().map(|s| table.var(s.current)).collect();
    for leaf in ns..ns + np {
        quantified.push(table.var(TimedVar::Shifted { leaf, shift: 1 }));
    }
    let quantified: VarSet = quantified.into_iter().collect();
    let rename_map: Vec<(Var, Var)> = slots
        .iter()
        .map(|s| {
            (
                table.var(TimedVar::Primed {
                    leaf: s.leaf,
                    depth: s.depth,
                }),
                table.var(s.current),
            )
        })
        .collect();

    // The output-divergence condition over (product state, fresh input).
    // Per-output diffs are kept so the diagnostic path below reuses them
    // instead of re-deriving each with a second xor pass.
    let mut divergence = manager.zero();
    let mut output_diffs: Vec<Bdd> = Vec::with_capacity(machine.outputs.len());
    for (&yt, &ys) in machine.outputs.iter().zip(&steady_out) {
        let diff = manager.xor(yt, ys);
        divergence = manager.or(divergence, diff);
        output_diffs.push(diff);
    }

    // Least fixpoint, checking divergence as the frontier grows so failing
    // periods exit early.
    let mut iteration = 0u64;
    loop {
        let bad = manager.and(reached, divergence);
        if !bad.is_false() {
            // Identify the concrete diverging output for diagnostics. A
            // globally diverging output is not necessarily *reachably*
            // diverging, so each diff is re-checked against the frontier.
            for (i, &diff) in output_diffs.iter().enumerate() {
                let hit = manager.and(reached, diff);
                if !hit.is_false() {
                    return Ok(ExactRun {
                        outcome: DecisionOutcome::InductionOutputMismatch { output: i },
                        bad_iteration: Some(iteration),
                    });
                }
            }
            unreachable!("divergence is the disjunction of per-output diffs");
        }
        let img_primed = manager.and_exists_set(reached, trans, &quantified);
        let img = manager.rename_vars(img_primed, &rename_map);
        let new_reached = manager.or(reached, img);
        if new_reached == reached {
            return Ok(ExactRun {
                outcome: DecisionOutcome::Valid,
                bad_iteration: None,
            });
        }
        reached = new_reached;
        iteration += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_netlist::{Circuit, GateKind, Time};
    use mct_tbf::ConeExtractor;

    fn t(v: f64) -> Time {
        Time::from_f64(v)
    }

    fn figure2() -> Circuit {
        let mut c = Circuit::new("fig2");
        let f = c.add_dff("f", true, Time::ZERO);
        let cb = c.add_gate("c", GateKind::Buf, &[f], t(1.5));
        let d = c.add_gate("d", GateKind::Not, &[f], t(4.0));
        let e = c.add_gate("e", GateKind::Buf, &[f], t(5.0));
        let a = c.add_gate("a", GateKind::And, &[cb, d, e], Time::ZERO);
        let b = c.add_gate("b", GateKind::Not, &[f], t(2.0));
        let g = c.add_gate("g", GateKind::Or, &[a, b], Time::ZERO);
        c.connect_dff_data("f", g).unwrap();
        c.set_output(f);
        c
    }

    fn run_exact(circuit: &Circuit, tau_millis: i64) -> DecisionOutcome {
        let view = FsmView::new(circuit).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        let machine = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, k| {
            if k == 0 {
                1
            } else {
                (k + tau_millis - 1) / tau_millis
            }
        })
        .unwrap();
        decide_exact(&view, &mut m, &mut tbl, &machine, &steady, 64).unwrap()
    }

    #[test]
    fn figure2_exact_agrees_with_cx() {
        assert!(run_exact(&figure2(), 4000).is_valid());
        assert!(run_exact(&figure2(), 2500).is_valid());
        // The failing period must keep reporting the same diverging output:
        // fig2's single output is index 0, and the diagnostic path derives
        // the index from the cached per-output diffs.
        assert_eq!(
            run_exact(&figure2(), 2000),
            DecisionOutcome::InductionOutputMismatch { output: 0 }
        );
    }

    #[test]
    fn non_shifted_machine_var_is_a_structured_error() {
        // A machine that (incorrectly) references an `Absolute` variable
        // must produce `UnsupportedMachineVar`, not a panic.
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        let mut machine = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, _| 1).unwrap();
        let rogue = tbl.var(TimedVar::Absolute { leaf: 0, cycle: 3 });
        machine.next_state[0] = m.var(rogue);
        let err = decide_exact(&view, &mut m, &mut tbl, &machine, &steady, 64);
        match err {
            Err(MctError::UnsupportedMachineVar { var }) => {
                assert!(var.contains("Absolute"), "got {var}");
            }
            other => panic!("expected UnsupportedMachineVar, got {other:?}"),
        }
    }

    #[test]
    fn unobserved_lagging_register_accepted_only_by_exact() {
        // q0 is a toggler driving the only output; q1 shadows q0 through a
        // slow buffer and feeds nothing. At τ below the slow delay q1 lags —
        // a *state* mismatch that no output can see: the sufficient
        // condition C_x rejects, the exact check accepts.
        let mut c = Circuit::new("shadow");
        let q0 = c.add_dff("q0", false, Time::ZERO);
        let _q1 = c.add_dff("q1", false, Time::ZERO);
        let nq = c.add_gate("nq", GateKind::Not, &[q0], t(1.0));
        let slow = c.add_gate("slow", GateKind::Buf, &[q0], t(5.0));
        c.connect_dff_data("q0", nq).unwrap();
        c.connect_dff_data("q1", slow).unwrap();
        c.set_output(q0);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        // τ = 3: the q0 loop (delay 1) keeps shift 1, the shadow path
        // (delay 5) gets shift 2.
        let machine =
            DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, k| (k + 2999) / 3000)
                .unwrap();
        let ctx = crate::decision::DecisionContext::new(&ex, &mut m, &mut tbl).unwrap();
        assert!(
            !ctx.decide(&mut m, &mut tbl, &machine).is_valid(),
            "C_x must conservatively reject the lagging shadow register"
        );
        let exact = decide_exact(&view, &mut m, &mut tbl, &machine, &steady, 64).unwrap();
        assert!(
            exact.is_valid(),
            "the exact check must accept: no output observes q1, got {exact:?}"
        );
    }

    #[test]
    fn exact_rejects_observable_lag() {
        // Same shadow machine but with q1 exposed as an output: now the lag
        // is observable and even the exact check must reject.
        let mut c = Circuit::new("shadow_out");
        let q0 = c.add_dff("q0", false, Time::ZERO);
        let q1 = c.add_dff("q1", false, Time::ZERO);
        let nq = c.add_gate("nq", GateKind::Not, &[q0], t(1.0));
        let slow = c.add_gate("slow", GateKind::Buf, &[q0], t(5.0));
        c.connect_dff_data("q0", nq).unwrap();
        c.connect_dff_data("q1", slow).unwrap();
        c.set_output(q0);
        c.set_output(q1);
        let _ = q1;
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        let machine =
            DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, k| (k + 2999) / 3000)
                .unwrap();
        let exact = decide_exact(&view, &mut m, &mut tbl, &machine, &steady, 64).unwrap();
        assert!(!exact.is_valid());
    }

    #[test]
    fn product_bit_budget_enforced() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        let machine = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, k| {
            if k == 0 {
                1
            } else {
                (k + 1999) / 2000
            }
        })
        .unwrap();
        let err = decide_exact(&view, &mut m, &mut tbl, &machine, &steady, 2);
        assert!(matches!(err, Err(MctError::ProductTooLarge { .. })));
    }

    #[test]
    fn input_driven_machine_exact() {
        // q' = q XOR a: reading the input two cycles late is observable.
        let mut c = Circuit::new("xorin");
        let a = c.add_input("a");
        let q = c.add_dff("q", false, Time::ZERO);
        let nx = c.add_gate("nx", GateKind::Xor, &[q, a], t(1.0));
        c.connect_dff_data("q", nx).unwrap();
        c.set_output(q);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        let ok = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, _| 1).unwrap();
        assert!(decide_exact(&view, &mut m, &mut tbl, &ok, &steady, 64)
            .unwrap()
            .is_valid());
        let late = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, _| 2).unwrap();
        assert!(!decide_exact(&view, &mut m, &mut tbl, &late, &steady, 64)
            .unwrap()
            .is_valid());
    }
}
