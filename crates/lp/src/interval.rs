//! Closed integer intervals for bounded delays.

use std::fmt;

/// A closed interval `[lo, hi]` over `i64` (delay values in fixed-point
/// milli-units).
///
/// Used to represent the paper's bounded gate-delay model
/// `d_i ∈ [d_i^min, d_i^max]` and the register-to-register path-delay
/// intervals `I_{k_i}` of its Section 7 interval algebra.
///
/// # Examples
///
/// ```
/// use mct_lp::Interval;
/// let a = Interval::new(900, 1000);
/// let b = Interval::new(950, 1200);
/// assert_eq!(a.intersect(b), Some(Interval::new(950, 1000)));
/// assert_eq!(a + b, Interval::new(1850, 2200));
/// assert!(a.contains(1000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Lower endpoint.
    pub fn lo(self) -> i64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(self) -> i64 {
        self.hi
    }

    /// `hi − lo`.
    pub fn width(self) -> i64 {
        self.hi - self.lo
    }

    /// Whether the interval is a single point.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies in the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The intersection, or `None` when disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// The smallest interval containing both.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Scales both endpoints by the rational `num/den`, rounding the lower
    /// endpoint down and the upper endpoint up (outward, conservative).
    ///
    /// # Panics
    ///
    /// Panics if `den <= 0`.
    pub fn scale_outward(self, num: i64, den: i64) -> Interval {
        assert!(den > 0, "denominator must be positive");
        let lo = (self.lo * num).div_euclid(den);
        let hi_num = self.hi * num;
        let hi = hi_num.div_euclid(den) + i64::from(hi_num.rem_euclid(den) != 0);
        Interval { lo, hi }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    /// Minkowski sum: `[a,b] + [c,d] = [a+c, b+d]` (sums of independent
    /// delays).
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(-3, 7);
        assert_eq!(i.lo(), -3);
        assert_eq!(i.hi(), 7);
        assert_eq!(i.width(), 10);
        assert!(!i.is_point());
        assert!(Interval::point(4).is_point());
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn inverted_bounds_panic() {
        let _ = Interval::new(2, 1);
    }

    #[test]
    fn contains_endpoints() {
        let i = Interval::new(10, 20);
        assert!(i.contains(10));
        assert!(i.contains(20));
        assert!(!i.contains(9));
        assert!(!i.contains(21));
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(b), Some(Interval::new(5, 10)));
        assert_eq!(a.intersect(Interval::new(11, 12)), None);
        // Touching intervals intersect in a point.
        assert_eq!(
            a.intersect(Interval::new(10, 12)),
            Some(Interval::point(10))
        );
    }

    #[test]
    fn hull_and_sum() {
        let a = Interval::new(0, 2);
        let b = Interval::new(5, 6);
        assert_eq!(a.hull(b), Interval::new(0, 6));
        assert_eq!(a + b, Interval::new(5, 8));
    }

    #[test]
    fn scale_outward_is_conservative() {
        // 90% of [1000, 1005]: lower rounds down, upper rounds up.
        let i = Interval::new(1000, 1005);
        let s = i.scale_outward(9, 10);
        assert_eq!(s, Interval::new(900, 905));
        let odd = Interval::new(5, 5).scale_outward(9, 10);
        assert_eq!(odd, Interval::new(4, 5));
        assert!(odd.lo() <= 9 * 5 / 10 && 9 * 5 % 10 == 5);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(1, 2).to_string(), "[1, 2]");
    }
}
