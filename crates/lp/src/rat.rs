//! Exact rational arithmetic over `i64`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always kept in
/// lowest terms.
///
/// The cycle-time sweep evaluates floor terms `⌊−k/τ⌋` at candidate periods
/// `τ = k/j`; both the candidates and the floors must be exact, because the
/// algorithm's breakpoints are precisely the discontinuities of those floors.
///
/// Arithmetic panics on overflow in debug builds (as `i64` does); the
/// magnitudes in this workload (delays below 2³², denominators below a few
/// thousand) stay far from the limits.
///
/// # Examples
///
/// ```
/// use mct_lp::Rat;
/// let tau = Rat::new(5, 2); // 2.5 time units
/// assert_eq!(tau.ceil_div_int(4), 2);      // ⌈4 / 2.5⌉ = 2
/// assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
/// assert!(Rat::new(9, 4) < tau);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i64,
    den: i64,
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn from_int(n: i64) -> Self {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after reduction; carries the sign).
    pub fn num(self) -> i64 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i64 {
        self.den
    }

    /// The value as `f64` (for reporting).
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `⌈k / self⌉` for a non-negative integer `k` and positive `self` —
    /// the discrete shift `m_i = −⌊−k_i/τ⌋` of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `self ≤ 0` or `k < 0`.
    pub fn ceil_div_int(self, k: i64) -> i64 {
        assert!(self.num > 0, "period must be positive");
        assert!(k >= 0, "path delay must be non-negative");
        // ⌈k / (num/den)⌉ = ⌈k·den / num⌉
        let prod = k.checked_mul(self.den).expect("overflow in ceil_div_int");
        div_ceil(prod, self.num)
    }

    /// `⌊k / self⌋` for a non-negative integer `k` and positive `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self ≤ 0` or `k < 0`.
    pub fn floor_div_int(self, k: i64) -> i64 {
        assert!(self.num > 0, "period must be positive");
        assert!(k >= 0, "path delay must be non-negative");
        let prod = k.checked_mul(self.den).expect("overflow in floor_div_int");
        prod.div_euclid(self.num)
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Midpoint of `self` and `other` (exact).
    pub fn midpoint(self, other: Rat) -> Rat {
        let sum = self + other;
        Rat::new(sum.num, sum.den * 2)
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "division by zero rational");
        Rat::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_den_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::new(7, 7) == Rat::ONE);
        assert_eq!(Rat::new(3, 2).max(Rat::ONE), Rat::new(3, 2));
        assert_eq!(Rat::new(3, 2).min(Rat::ONE), Rat::ONE);
    }

    #[test]
    fn ceil_and_floor_division() {
        let tau = Rat::new(5, 2); // 2.5
        assert_eq!(tau.ceil_div_int(0), 0);
        assert_eq!(tau.ceil_div_int(2), 1); // 2/2.5 = 0.8
        assert_eq!(tau.ceil_div_int(5), 2); // exactly 2
        assert_eq!(tau.ceil_div_int(6), 3);
        assert_eq!(tau.floor_div_int(5), 2);
        assert_eq!(tau.floor_div_int(4), 1);
    }

    #[test]
    fn example2_shifts() {
        // Paper Example 2: path delays 1.5, 4, 5, 2 (scaled ×1000) at τ=2.5.
        let tau = Rat::new(2500, 1);
        let shifts: Vec<i64> = [1500, 4000, 5000, 2000]
            .iter()
            .map(|&k| tau.ceil_div_int(k))
            .collect();
        assert_eq!(shifts, vec![1, 2, 2, 1]);
        // At τ = 4 all shifts collapse to within-max.
        let tau4 = Rat::new(4000, 1);
        let shifts4: Vec<i64> = [1500, 4000, 5000, 2000]
            .iter()
            .map(|&k| tau4.ceil_div_int(k))
            .collect();
        assert_eq!(shifts4, vec![1, 1, 2, 1]);
    }

    #[test]
    fn midpoint_exact() {
        assert_eq!(Rat::new(1, 2).midpoint(Rat::new(1, 3)), Rat::new(5, 12));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(5, 2).to_string(), "5/2");
        assert_eq!(Rat::from_int(7).to_string(), "7");
    }

    #[test]
    fn as_f64() {
        assert!((Rat::new(5, 2).as_f64() - 2.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn ceil_div_nonpositive_period() {
        let _ = Rat::new(-1, 2).ceil_div_int(3);
    }
}
