//! A dense two-phase simplex solver.

use std::fmt;

const EPS: f64 = 1e-9;

/// Result of [`Simplex::solve`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal {
        /// The optimal objective value.
        value: f64,
        /// An optimal assignment of the structural variables.
        solution: Vec<f64>,
    },
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl fmt::Display for LpOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpOutcome::Optimal { value, .. } => write!(f, "optimal (value {value})"),
            LpOutcome::Infeasible => f.write_str("infeasible"),
            LpOutcome::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// A linear program `max c·x  s.t.  A·x ≤ b, x ≥ 0`, solved by the
/// textbook two-phase simplex method with Bland's anti-cycling rule.
///
/// Build the program incrementally with [`add_le`](Self::add_le),
/// [`add_ge`](Self::add_ge), and [`add_eq`](Self::add_eq); `≥` and `=` rows
/// are translated to `≤` form internally. All variables are non-negative,
/// which matches the paper's Section-7 programs (delays and clock periods
/// are physical durations).
///
/// The solver is exact up to `f64` round-off; the cycle-time engine feeds it
/// well-scaled inputs (milli-unit delays) and treats answers within `1e-6`
/// of a bound as binding.
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

impl Simplex {
    /// Creates a program over `num_vars` non-negative structural variables
    /// with a zero objective.
    pub fn new(num_vars: usize) -> Self {
        Simplex {
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows (after `≥`/`=` translation).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the maximization objective `c·x`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != num_vars`.
    pub fn set_objective(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.num_vars, "objective width mismatch");
        self.objective = c.to_vec();
    }

    /// Adds the constraint `a·x ≤ b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != num_vars`.
    pub fn add_le(&mut self, a: &[f64], b: f64) {
        assert_eq!(a.len(), self.num_vars, "constraint width mismatch");
        self.rows.push((a.to_vec(), b));
    }

    /// Adds the constraint `a·x ≥ b` (stored as `−a·x ≤ −b`).
    pub fn add_ge(&mut self, a: &[f64], b: f64) {
        let neg: Vec<f64> = a.iter().map(|&v| -v).collect();
        self.add_le(&neg, -b);
    }

    /// Adds the constraint `a·x = b` (as a `≤` and a `≥` pair).
    pub fn add_eq(&mut self, a: &[f64], b: f64) {
        self.add_le(a, b);
        self.add_ge(a, b);
    }

    /// Adds the bound `lo ≤ x_j ≤ hi`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `lo > hi`.
    pub fn add_bounds(&mut self, j: usize, lo: f64, hi: f64) {
        assert!(j < self.num_vars, "variable index out of range");
        assert!(lo <= hi, "inverted bounds");
        let mut row = vec![0.0; self.num_vars];
        row[j] = 1.0;
        self.add_le(&row, hi);
        if lo > 0.0 {
            self.add_ge(&row, lo);
        }
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        self.solve_counted().0
    }

    /// Solves the program and reports the number of simplex pivots
    /// performed across both phases — the work metric surfaced by the
    /// clock-skew optimizer's kernel counters.
    pub fn solve_counted(&self) -> (LpOutcome, u64) {
        let mut tableau = Tableau::build(self);
        let outcome = tableau.solve(&self.objective);
        (outcome, tableau.pivots)
    }
}

struct Tableau {
    num_structural: usize,
    num_slack: usize,
    /// Artificial columns start at `num_structural + num_slack`.
    num_art: usize,
    /// `rows[i]` has one entry per column plus the rhs in the last slot.
    rows: Vec<Vec<f64>>,
    basis: Vec<usize>,
    /// Pivots performed across both phases.
    pivots: u64,
}

impl Tableau {
    fn build(lp: &Simplex) -> Tableau {
        let n = lp.num_vars;
        let m = lp.rows.len();
        // Which rows need an artificial variable (negative rhs after adding
        // the slack)?
        let art_rows: Vec<usize> = (0..m).filter(|&i| lp.rows[i].1 < 0.0).collect();
        let num_art = art_rows.len();
        let total = n + m + num_art;
        let mut rows = Vec::with_capacity(m);
        let mut basis = vec![0usize; m];
        let mut next_art = 0usize;
        for (i, (a, b)) in lp.rows.iter().enumerate() {
            let mut row = vec![0.0; total + 1];
            let negate = *b < 0.0;
            let sign = if negate { -1.0 } else { 1.0 };
            for (j, &v) in a.iter().enumerate() {
                row[j] = sign * v;
            }
            // Slack of the original ≤ row; negated rows carry it with −1.
            row[n + i] = sign;
            row[total] = sign * b;
            if negate {
                let col = n + m + next_art;
                next_art += 1;
                row[col] = 1.0;
                basis[i] = col;
            } else {
                basis[i] = n + i;
            }
            rows.push(row);
        }
        Tableau {
            num_structural: n,
            num_slack: m,
            num_art,
            rows,
            basis,
            pivots: 0,
        }
    }

    fn total_cols(&self) -> usize {
        self.num_structural + self.num_slack + self.num_art
    }

    fn rhs(&self, i: usize) -> f64 {
        let t = self.total_cols();
        self.rows[i][t]
    }

    /// Prices a cost vector into a reduced-cost row for the current basis.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let total = self.total_cols();
        let mut p = vec![0.0; total + 1];
        p[..cost.len()].copy_from_slice(cost);
        for (i, &b) in self.basis.iter().enumerate() {
            let pb = p[b];
            if pb.abs() > EPS {
                let row = self.rows[i].clone();
                for (pj, rj) in p.iter_mut().zip(row.iter()) {
                    *pj -= pb * rj;
                }
            }
        }
        p
    }

    fn pivot(&mut self, row: usize, col: usize, p: &mut [f64]) {
        self.pivots += 1;
        let piv = self.rows[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.abs() > EPS {
                for (rv, pv) in r.iter_mut().zip(pivot_row.iter()) {
                    *rv -= factor * pv;
                }
            }
        }
        let factor = p[col];
        if factor.abs() > EPS {
            for (pv, rv) in p.iter_mut().zip(pivot_row.iter()) {
                *pv -= factor * rv;
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations maximizing the priced cost row `p`, entering
    /// only columns where `allowed` is true. Returns `false` on
    /// unboundedness.
    fn optimize(&mut self, p: &mut [f64], allowed: impl Fn(usize) -> bool) -> bool {
        let total = self.total_cols();
        // Bland's rule gives finite termination; the cap is a defensive
        // backstop against floating-point pathology.
        let max_iters = 200 + 50 * (total + self.rows.len()) * (total + self.rows.len());
        for _ in 0..max_iters {
            // Entering column: smallest index with positive reduced cost.
            let Some(col) = (0..total).find(|&j| allowed(j) && p[j] > EPS) else {
                return true; // optimal
            };
            // Ratio test (Bland tie-break on basis variable index).
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][col];
                if a > EPS {
                    let ratio = self.rhs(i) / a;
                    let cand = (ratio, self.basis[i], i);
                    best = match best {
                        None => Some(cand),
                        Some(b) => {
                            if cand.0 < b.0 - EPS || (cand.0 < b.0 + EPS && cand.1 < b.1) {
                                Some(cand)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
            }
            match best {
                Some((_, _, row)) => self.pivot(row, col, p),
                None => return false, // unbounded in direction `col`
            }
        }
        panic!("simplex failed to converge (numerical pathology)");
    }

    fn solve(&mut self, objective: &[f64]) -> LpOutcome {
        let total = self.total_cols();
        // Phase 1: drive artificial variables to zero.
        if self.num_art > 0 {
            let art_start = self.num_structural + self.num_slack;
            let mut cost = vec![0.0; total];
            for c in cost.iter_mut().skip(art_start) {
                *c = -1.0; // maximize −Σ artificials
            }
            let mut p = self.reduced_costs(&cost);
            let ok = self.optimize(&mut p, |_| true);
            debug_assert!(ok, "phase 1 is always bounded");
            let infeasibility: f64 = (0..self.rows.len())
                .filter(|&i| self.basis[i] >= art_start)
                .map(|i| self.rhs(i))
                .sum();
            if infeasibility > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Pivot any degenerate basic artificials out of the basis.
            for i in 0..self.rows.len() {
                if self.basis[i] >= art_start {
                    if let Some(col) = (0..art_start).find(|&j| self.rows[i][j].abs() > 1e-7) {
                        let mut dummy = vec![0.0; total + 1];
                        self.pivot(i, col, &mut dummy);
                    }
                    // Otherwise the row is redundant (all-zero) and inert.
                }
            }
        }
        // Phase 2: the real objective; artificial columns may not re-enter.
        let art_start = self.num_structural + self.num_slack;
        let mut cost = vec![0.0; total];
        cost[..objective.len()].copy_from_slice(objective);
        let mut p = self.reduced_costs(&cost);
        if !self.optimize(&mut p, |j| j < art_start) {
            return LpOutcome::Unbounded;
        }
        let mut solution = vec![0.0; self.num_structural];
        let mut value = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                solution[b] = self.rhs(i);
                value += objective[b] * self.rhs(i);
            }
        }
        LpOutcome::Optimal { value, solution }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(outcome: LpOutcome) -> (f64, Vec<f64>) {
        match outcome {
            LpOutcome::Optimal { value, solution } => (value, solution),
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn textbook_two_var() {
        let mut lp = Simplex::new(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.add_le(&[1.0, 0.0], 4.0);
        lp.add_le(&[0.0, 2.0], 12.0);
        lp.add_le(&[3.0, 2.0], 18.0);
        let (value, x) = optimal(lp.solve());
        assert!((value - 36.0).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Simplex::new(1);
        lp.set_objective(&[1.0]);
        // x ≥ 3 only: unbounded above.
        lp.add_ge(&[1.0], 3.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Simplex::new(1);
        lp.set_objective(&[1.0]);
        lp.add_le(&[1.0], 1.0);
        lp.add_ge(&[1.0], 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        // max x + y  s.t.  x + y = 5, x ≤ 3.
        let mut lp = Simplex::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_eq(&[1.0, 1.0], 5.0);
        lp.add_le(&[1.0, 0.0], 3.0);
        let (value, _) = optimal(lp.solve());
        assert!((value - 5.0).abs() < 1e-7);
    }

    #[test]
    fn bounds_helper() {
        let mut lp = Simplex::new(1);
        lp.set_objective(&[-1.0]); // minimize x via max −x
        lp.add_bounds(0, 2.0, 7.0);
        let (value, x) = optimal(lp.solve());
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((value + 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints intersecting at the optimum.
        let mut lp = Simplex::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_le(&[1.0, 1.0], 1.0);
        lp.add_le(&[1.0, 0.0], 1.0);
        lp.add_le(&[0.0, 1.0], 1.0);
        lp.add_le(&[2.0, 2.0], 2.0);
        let (value, _) = optimal(lp.solve());
        assert!((value - 1.0).abs() < 1e-7);
    }

    #[test]
    fn paper_style_tau_program() {
        // Section 7 form: max τ subject to the shift constraints
        //   τ·(−σ−1) ≤ k ≤ τ·(−σ)  with σ = −2   →  τ ≤ k ≤ 2τ
        // and the path-delay bound k ∈ [3.6, 4.0]:
        // feasible τ ∈ [2.0, 4.0]; maximum τ = 4.0 (k = 4).
        // Variables: x0 = τ, x1 = k.
        let mut lp = Simplex::new(2);
        lp.set_objective(&[1.0, 0.0]);
        lp.add_le(&[1.0, -1.0], 0.0); // τ − k ≤ 0
        lp.add_ge(&[2.0, -1.0], 0.0); // 2τ − k ≥ 0
        lp.add_bounds(1, 3.6, 4.0);
        let (value, _) = optimal(lp.solve());
        assert!((value - 4.0).abs() < 1e-7, "got {value}");
    }

    #[test]
    fn zero_objective_feasible() {
        let mut lp = Simplex::new(2);
        lp.add_le(&[1.0, 1.0], 3.0);
        let (value, _) = optimal(lp.solve());
        assert_eq!(value, 0.0);
    }

    #[test]
    fn empty_program_is_optimal_zero() {
        let lp = Simplex::new(0);
        let (value, solution) = optimal(lp.solve());
        assert_eq!(value, 0.0);
        assert!(solution.is_empty());
    }

    #[test]
    fn redundant_equality_rows() {
        // x = 2 stated twice plus implied by two inequalities.
        let mut lp = Simplex::new(1);
        lp.set_objective(&[1.0]);
        lp.add_eq(&[1.0], 2.0);
        lp.add_eq(&[1.0], 2.0);
        let (value, x) = optimal(lp.solve());
        assert!((value - 2.0).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "objective width mismatch")]
    fn objective_width_checked() {
        let mut lp = Simplex::new(2);
        lp.set_objective(&[1.0]);
    }

    /// Adds the difference constraint `x_j − x_i ≤ c` (the shape of every
    /// setup/hold row in the clock-skew feasibility programs).
    fn add_diff(lp: &mut Simplex, j: usize, i: usize, c: f64) {
        let mut row = vec![0.0; lp.num_vars()];
        row[j] = 1.0;
        row[i] = -1.0;
        lp.add_le(&row, c);
    }

    #[test]
    fn skew_difference_system_feasible() {
        // Two registers + env node (index 2 pinned by bounds to [0, 0]):
        //   s0 − s1 ≤ −2  (setup: T − k_max = −2)
        //   s1 − s0 ≤  4  (setup of the return path)
        //   s1 − env ≤ 5, env − s1 ≤ 5  (|s1| bound, shifted encoding)
        // Feasible: s0 = 0, s1 ∈ [2, 4] after shifting.
        let mut lp = Simplex::new(3);
        lp.set_objective(&[0.0, 0.0, 0.0]);
        add_diff(&mut lp, 0, 1, -2.0);
        add_diff(&mut lp, 1, 0, 4.0);
        add_diff(&mut lp, 1, 2, 5.0);
        add_diff(&mut lp, 2, 1, 5.0);
        let (outcome, pivots) = lp.solve_counted();
        let (_, x) = optimal(outcome);
        assert!(x[1] - x[0] >= 2.0 - 1e-7, "setup row violated: {x:?}");
        assert!(x[1] - x[0] <= 4.0 + 1e-7);
        assert!(pivots > 0, "a feasibility pass must pivot at least once");
    }

    #[test]
    fn skew_negative_cycle_infeasible() {
        // s1 − s0 ≤ −3 together with s0 − s1 ≤ 1 sums to a −2 cycle: the
        // period is too short for any skew assignment.
        let mut lp = Simplex::new(2);
        add_diff(&mut lp, 1, 0, -3.0);
        add_diff(&mut lp, 0, 1, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn skew_without_bounds_unbounded() {
        // Hold rows alone never cap the skews from above: maximizing a skew
        // with only s0 − s1 ≤ 0 runs away. The optimizer always adds the
        // |s_i| ≤ B bound rows precisely to rule this out.
        let mut lp = Simplex::new(2);
        lp.set_objective(&[0.0, 1.0]);
        add_diff(&mut lp, 0, 1, 0.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
        let mut bounded = Simplex::new(2);
        bounded.set_objective(&[0.0, 1.0]);
        add_diff(&mut bounded, 0, 1, 0.0);
        bounded.add_bounds(0, 0.0, 6.0);
        bounded.add_bounds(1, 0.0, 6.0);
        let (value, _) = optimal(bounded.solve());
        assert!((value - 6.0).abs() < 1e-7);
    }

    #[test]
    fn skew_degenerate_equality_cycle_terminates() {
        // A zero-weight cycle forces s1 − s0 = 2 exactly; stating it through
        // four redundant rows makes the optimum degenerate (several bases
        // describe the same vertex). Bland's rule must still terminate.
        let mut lp = Simplex::new(2);
        lp.set_objective(&[1.0, 1.0]);
        add_diff(&mut lp, 1, 0, 2.0);
        add_diff(&mut lp, 0, 1, -2.0);
        add_diff(&mut lp, 1, 0, 2.0);
        add_diff(&mut lp, 0, 1, -2.0);
        lp.add_bounds(1, 0.0, 5.0);
        let (outcome, pivots) = lp.solve_counted();
        let (value, x) = optimal(outcome);
        assert!((x[1] - x[0] - 2.0).abs() < 1e-7, "cycle not tight: {x:?}");
        assert!((value - 8.0).abs() < 1e-7, "expected s = (3, 5), got {x:?}");
        assert!(pivots > 0);
    }

    #[test]
    fn negative_objective_coefficients() {
        // max −x − y s.t. x + y ≥ 1: optimum at value −1.
        let mut lp = Simplex::new(2);
        lp.set_objective(&[-1.0, -1.0]);
        lp.add_ge(&[1.0, 1.0], 1.0);
        let (value, x) = optimal(lp.solve());
        assert!((value + 1.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mct_prng::SmallRng;

    fn random_lp(rng: &mut SmallRng) -> (Vec<f64>, Vec<(Vec<f64>, f64)>) {
        let nvars = 3usize;
        let obj: Vec<f64> = (0..nvars)
            .map(|_| rng.gen_range(-4..=4i64) as f64)
            .collect();
        let nrows = rng.gen_range(1..6usize);
        let rows = (0..nrows)
            .map(|_| {
                let a: Vec<f64> = (0..nvars)
                    .map(|_| rng.gen_range(-4..=4i64) as f64)
                    .collect();
                (a, rng.gen_range(0..=20i64) as f64)
            })
            .collect();
        (obj, rows)
    }

    /// Optimal solutions are feasible and at least as good as a grid of
    /// sampled feasible points.
    #[test]
    fn optimum_is_feasible_and_dominates_samples() {
        let mut rng = SmallRng::seed_from_u64(0x51_4c50);
        for case in 0..128 {
            let (obj, rows) = random_lp(&mut rng);
            let mut lp = Simplex::new(obj.len());
            lp.set_objective(&obj);
            for (a, b) in &rows {
                lp.add_le(a, *b);
            }
            match lp.solve() {
                LpOutcome::Optimal { value, solution } => {
                    // Feasibility of the returned point.
                    for (a, b) in &rows {
                        let lhs: f64 = a.iter().zip(&solution).map(|(c, x)| c * x).sum();
                        assert!(
                            lhs <= b + 1e-6,
                            "case {case}: violated row {a:?} ≤ {b}: lhs {lhs}"
                        );
                    }
                    assert!(solution.iter().all(|&x| x >= -1e-9));
                    let recomputed: f64 = obj.iter().zip(&solution).map(|(c, x)| c * x).sum();
                    assert!((recomputed - value).abs() < 1e-6);
                    // Grid sampling cannot beat the optimum.
                    for gx in 0..=4 {
                        for gy in 0..=4 {
                            for gz in 0..=4 {
                                let p = [gx as f64, gy as f64, gz as f64];
                                let feasible = rows.iter().all(|(a, b)| {
                                    a.iter().zip(&p).map(|(c, x)| c * x).sum::<f64>() <= b + 1e-9
                                });
                                if feasible {
                                    let v: f64 = obj.iter().zip(&p).map(|(c, x)| c * x).sum();
                                    assert!(
                                        v <= value + 1e-6,
                                        "case {case}: sample {p:?} (value {v}) beats \
                                         optimum {value}"
                                    );
                                }
                            }
                        }
                    }
                }
                LpOutcome::Infeasible => {
                    // The origin must then violate some row (all-zero rows
                    // with b ≥ 0 cannot make the program infeasible).
                    let origin_ok = rows.iter().all(|(_, b)| *b >= 0.0);
                    assert!(
                        !origin_ok,
                        "case {case}: claimed infeasible but x = 0 is feasible"
                    );
                }
                LpOutcome::Unbounded => {
                    // Plausible whenever some objective coefficient is
                    // positive; just require that it isn't the all-zero
                    // objective.
                    assert!(obj.iter().any(|&c| c > 0.0));
                }
            }
        }
    }
}
