//! Interval algebra and a dense simplex linear-program solver.
//!
//! Section 7 of the DAC 1994 minimum-cycle-time paper handles manufacturing
//! variation by letting every register-to-register path delay `k_i` range
//! over an interval. Each floor term `⌊−k_i/τ⌋` then becomes a *set* of
//! possible shifts, candidate shift combinations must be checked for
//! *feasibility*, and the final cycle-time upper bound is the optimum of a
//! family of small linear programs
//!
//! ```text
//! τ(σ) = max τ   s.t.   τ·(−σ_i − 1) + ε ≤ k_i ≤ τ·(−σ_i),
//!                        k_i = Σ d_g  (gates on the path),
//!                        d_g ∈ [d_g^min, d_g^max].
//! ```
//!
//! This crate supplies the arithmetic those steps need, independent of any
//! circuit representation:
//!
//! * [`Rat`] — exact `i64` rationals for breakpoints `τ = k / j` and the
//!   floor terms `⌈k/τ⌉` (float arithmetic is unreliable exactly at the
//!   breakpoints the sweep must examine);
//! * [`Interval`] — closed integer intervals for delay bounds;
//! * [`Simplex`] — a two-phase dense simplex solver over `f64` for the
//!   path-coupled feasibility programs.
//!
//! # Examples
//!
//! ```
//! use mct_lp::{LpOutcome, Simplex};
//!
//! // max x0 + x1  s.t.  x0 + 2 x1 ≤ 4,  3 x0 + x1 ≤ 6,  x ≥ 0.
//! let mut lp = Simplex::new(2);
//! lp.set_objective(&[1.0, 1.0]);
//! lp.add_le(&[1.0, 2.0], 4.0);
//! lp.add_le(&[3.0, 1.0], 6.0);
//! match lp.solve() {
//!     LpOutcome::Optimal { value, solution } => {
//!         assert!((value - 2.8).abs() < 1e-9);
//!         assert!((solution[0] - 1.6).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod rat;
mod simplex;

pub use interval::Interval;
pub use rat::Rat;
pub use simplex::{LpOutcome, Simplex};
