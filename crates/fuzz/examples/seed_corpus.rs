//! Regenerates the hand-minimized seed entries of `tests/corpus/` and
//! probes the sharpness behavior the soundness tests assert. Run from the
//! workspace root:
//!
//! ```text
//! cargo run --release -p mct-fuzz --example seed_corpus
//! ```

use std::path::Path;

use mct_core::{MctAnalyzer, MctOptions};
use mct_fuzz::{check_circuit, save_repro, OracleCtx, OracleOptions, OracleSelect, Provenance};
use mct_gen::paper_figure2;
use mct_netlist::{Circuit, GateKind, PinDelay, Time};
use mct_sim::{functional_trace, DelayMode, SimConfig, Simulator};

/// Two-register ring with an inverting hop: functionally a period-4
/// counter. The asymmetric NOT pin makes the transition-delay machinery
/// load-bearing. Ground truth: MCT 1.5 (the slowest hop), and below it the
/// ring visibly corrupts.
fn ring2() -> Circuit {
    let mut c = Circuit::new("ring2");
    let q0 = c.add_dff("q0", true, Time::ZERO);
    let q1 = c.add_dff("q1", false, Time::ZERO);
    let n1 = c.add_gate_with_delays(
        "n1",
        GateKind::Not,
        &[q1],
        vec![PinDelay::new(
            Time::from_millis(1500),
            Time::from_millis(1000),
        )],
    );
    let b0 = c.add_gate("b0", GateKind::Buf, &[q0], Time::from_millis(1000));
    c.connect_dff_data("q0", n1).unwrap();
    c.connect_dff_data("q1", b0).unwrap();
    c.set_output(q1);
    c
}

/// Unbalanced two-register ring carrying its own optimal skew witness:
/// `q1` captures 2.0 units late, balancing the 5-vs-1 hops so the machine
/// runs at period 3 while the zero-skew machine needs 5. The skew tier
/// must recover both bounds (and the exact margin of 2) from the
/// annotated file alone.
fn skewimp() -> Circuit {
    let mut c = Circuit::new("skewimp");
    let q0 = c.add_dff("q0", false, Time::ZERO);
    let q1 = c.add_dff("q1", false, Time::ZERO);
    let n1 = c.add_gate("n1", GateKind::Not, &[q0], Time::from_millis(5000));
    let n0 = c.add_gate("n0", GateKind::Buf, &[q1], Time::from_millis(1000));
    c.connect_dff_data("q1", n1).unwrap();
    c.connect_dff_data("q0", n0).unwrap();
    c.set_output(q0);
    c.set_dff_skew(q1, Time::from_millis(2000)).unwrap();
    c
}

/// Symmetric two-register ring with a deliberately *unhelpful* annotation:
/// skewing `q1` by 0.5 stretches one hop to 3.5 while the zero-skew
/// machine runs at 3 — the tier must report that no skew beats zero skew
/// (optimal == zero-skew bound, all-zero witness).
fn skewneu() -> Circuit {
    let mut c = Circuit::new("skewneu");
    let q0 = c.add_dff("q0", false, Time::ZERO);
    let q1 = c.add_dff("q1", false, Time::ZERO);
    let n1 = c.add_gate("n1", GateKind::Not, &[q0], Time::from_millis(3000));
    let n0 = c.add_gate("n0", GateKind::Buf, &[q1], Time::from_millis(3000));
    c.connect_dff_data("q1", n1).unwrap();
    c.connect_dff_data("q0", n0).unwrap();
    c.set_output(q0);
    c.set_dff_skew(q1, Time::from_millis(500)).unwrap();
    c
}

/// Every delay a whole multiple of 1000 milli-units, so each candidate
/// period the sweep examines lands *exactly on* a breakpoint `k/j` — the
/// configuration where an interval-endpoint off-by-one would flip the
/// answer. Functionally an inverter plus an XOR shadow register.
fn bpgrid() -> Circuit {
    let mut c = Circuit::new("bpgrid");
    let q = c.add_dff("q", true, Time::ZERO);
    let q2 = c.add_dff("q2", false, Time::ZERO);
    let h = c.add_gate("h", GateKind::Buf, &[q], Time::from_millis(2000));
    let n = c.add_gate_with_delays(
        "n",
        GateKind::Not,
        &[h],
        vec![PinDelay::new(
            Time::from_millis(3000),
            Time::from_millis(1000),
        )],
    );
    let m = c.add_gate("m", GateKind::Xor, &[q, q2], Time::from_millis(1000));
    c.connect_dff_data("q", n).unwrap();
    c.connect_dff_data("q2", m).unwrap();
    c.set_output(q2);
    c
}

fn probe_below_bound(c: &Circuit, tau_millis: i64) {
    let report = MctAnalyzer::new(c)
        .unwrap()
        .run(&MctOptions::paper())
        .unwrap();
    println!(
        "{}: bound {} first_failing {:?}",
        c.name(),
        report.mct_upper_bound,
        report.first_failing_tau
    );
    let sim = Simulator::new(c).unwrap();
    let cfg = SimConfig::at_period(Time::from_millis(tau_millis))
        .with_cycles(16)
        .with_delay_mode(DelayMode::Max);
    let ins = |cycle: usize, i: usize| (cycle + i).is_multiple_of(3);
    let trace = sim.run(&cfg, ins);
    let (states, outputs) = functional_trace(c, 16, ins);
    println!(
        "  at tau={}: diverges={} first={:?}",
        tau_millis as f64 / 1000.0,
        !trace.matches(&states, &outputs),
        trace.first_divergence(&states)
    );
}

fn main() {
    let dir = Path::new("tests/corpus");
    let entries: [(&str, Circuit, &str); 5] = [
        (
            "fig2",
            paper_figure2(),
            "hand seed: the paper's Figure-2 machine; MCT 2.5 beats every \
             combinational metric (floating 4, topological 5); first failing \
             period 2.0",
        ),
        (
            "ring2",
            ring2(),
            "hand seed: two-register inverting ring with an asymmetric NOT \
             pin; MCT 1.5, corrupts visibly below it",
        ),
        (
            "bpgrid",
            bpgrid(),
            "hand seed: all delays multiples of 1000 so every examined \
             candidate period lands exactly on a breakpoint k/j",
        ),
        (
            "skewimp",
            skewimp(),
            "hand seed: unbalanced 5-vs-1 ring annotated with its optimal \
             skew witness (q1 +2.0); skewed MCT 3 beats zero-skew MCT 5 by \
             exactly 2",
        ),
        (
            "skewneu",
            skewneu(),
            "hand seed: symmetric 3-vs-3 ring with an unhelpful +0.5 skew \
             on q1 (machine MCT 3.5); the tier must report optimal == \
             zero-skew == 3 with an all-zero witness",
        ),
    ];
    let mut ctx = OracleCtx::new(OracleSelect::All, OracleOptions::default());
    for (stem, circuit, detail) in &entries {
        let prov = Provenance {
            seed: 0,
            iteration: 0,
            oracle: "seed".into(),
            detail: (*detail).into(),
        };
        let path = save_repro(dir, stem, circuit, &prov).expect("write corpus entry");
        match check_circuit(&mut ctx, circuit, 0xC0FFEE) {
            None => println!("{} -> {} (oracle stack: pass)", stem, path.display()),
            Some(f) => println!("{stem}: ORACLE FAILURE [{}] {}", f.oracle, f.detail),
        }
    }
    println!();
    probe_below_bound(&paper_figure2(), 2250);
    probe_below_bound(&ring2(), 1250);
    probe_below_bound(&bpgrid(), 3500);
}
