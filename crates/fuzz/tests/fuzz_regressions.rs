//! Regression tests for the fuzzing loop itself: determinism of the stats,
//! and the planted-bug drill — inject a known off-by-one into a copy of the
//! breakpoint enumerator and check the fuzzer both catches it and shrinks
//! the witness to a small circuit.

use mct_core::BreakpointIter;
use mct_fuzz::{run, run_with_oracle, CustomOracle, FuzzConfig, GenConfig};
use mct_lp::Rat;
use mct_netlist::{Circuit, Node};

/// Small generator limits so the full-stack tests stay affordable in debug
/// builds (the CI smoke job runs the real sizes in release).
fn small_gen() -> GenConfig {
    GenConfig {
        max_inputs: 2,
        max_dffs: 4,
        max_gates: 10,
        max_fanin: 3,
        wide_delays: false,
    }
}

/// Two runs with the same configuration must agree byte-for-byte on the
/// deterministic JSON encoding (`wall_ms` omitted).
#[test]
fn same_seed_is_bit_identical() {
    let cfg = FuzzConfig {
        seed: 42,
        iters: 4,
        gen: small_gen(),
        ..FuzzConfig::default()
    };
    let a = run(&cfg).to_json(None).to_pretty();
    let b = run(&cfg).to_json(None).to_pretty();
    assert_eq!(a, b, "stats diverged between identical runs");
}

/// The default oracle stack finds nothing wrong with the current engine.
#[test]
fn default_stack_smoke() {
    let cfg = FuzzConfig {
        seed: 1,
        iters: 4,
        gen: small_gen(),
        ..FuzzConfig::default()
    };
    let stats = run(&cfg);
    assert_eq!(stats.iters_run, 4);
    assert!(
        stats.failures.is_empty(),
        "unexpected failures: {:?}",
        stats.failures.iter().map(|f| &f.detail).collect::<Vec<_>>()
    );
}

/// The sigma oracle (flat-vs-pruned Φ identity) under the same knobs the
/// CLI applies for `--oracle sigma`: wide delay bias and path-coupled LPs
/// with a 75–100% variation interval, so the pruning bound actually
/// engages on a fraction of the candidates.
#[test]
fn sigma_oracle_smoke() {
    let mut cfg = FuzzConfig {
        seed: 7,
        iters: 4,
        select: mct_fuzz::OracleSelect::Sigma,
        gen: GenConfig {
            wide_delays: true,
            ..small_gen()
        },
        ..FuzzConfig::default()
    };
    cfg.oracle.analysis.delay_variation = Some((3, 4));
    cfg.oracle.analysis.path_coupled_lp = true;
    let stats = run(&cfg);
    assert_eq!(stats.iters_run, 4);
    assert!(
        stats.failures.is_empty(),
        "unexpected failures: {:?}",
        stats.failures.iter().map(|f| &f.detail).collect::<Vec<_>>()
    );
    assert!(
        stats.oracle.sigma_checks + stats.oracle.analysis_errors + stats.oracle.analysis_timeouts
            > 0,
        "sigma oracle never engaged"
    );
}

/// Every delay that occurs anywhere in the circuit, in milli-units.
fn circuit_delays(c: &Circuit) -> Vec<i64> {
    let mut out = Vec::new();
    for id in c.gates() {
        if let Node::Gate { pin_delays, .. } = c.node(id) {
            for d in pin_delays {
                out.push(d.rise.millis());
                out.push(d.fall.millis());
            }
        }
    }
    for id in c.dffs() {
        if let Node::Dff { clock_to_q, .. } = c.node(id) {
            out.push(clock_to_q.millis());
        }
    }
    out
}

/// A deliberately broken re-implementation of [`BreakpointIter`]: it treats
/// the floor as *exclusive*, silently dropping a breakpoint that lands
/// exactly on it. This is precisely the kind of interval-endpoint bug the
/// grid delays (multiples of 1000 milli-units) are chosen to expose.
fn buggy_breakpoints(delays_millis: &[i64], floor: Rat) -> Vec<Rat> {
    use std::collections::{BinaryHeap, HashSet};
    let mut heap = BinaryHeap::new();
    let mut seen = HashSet::new();
    for &k in delays_millis {
        if k > 0 && seen.insert(k) {
            heap.push((Rat::new(k, 1), k, 1));
        }
    }
    let mut out: Vec<Rat> = Vec::new();
    while let Some((value, k, j)) = heap.pop() {
        if value <= floor {
            // BUG: `<=` where the specification says `<` — a breakpoint
            // equal to the floor must be yielded.
            continue;
        }
        let next = Rat::new(k, j + 1);
        if next > floor {
            heap.push((next, k, j + 1));
        }
        if out.last() != Some(&value) {
            out.push(value);
        }
    }
    out
}

/// Plant the off-by-one and verify the fuzzer catches it quickly and the
/// shrinker reduces the witness to a handful of gates.
#[test]
fn planted_breakpoint_bug_is_caught_and_shrunk() {
    let floor = Rat::new(1000, 1);
    let check = |c: &Circuit| -> Option<String> {
        let delays = circuit_delays(c);
        let good: Vec<Rat> = BreakpointIter::new(&delays, floor).collect();
        let bad = buggy_breakpoints(&delays, floor);
        if good == bad {
            None
        } else {
            Some(format!(
                "breakpoint enumeration mismatch: {} exact vs {} buggy",
                good.len(),
                bad.len()
            ))
        }
    };
    let oracle = CustomOracle {
        name: "differential",
        check: &check,
    };
    let cfg = FuzzConfig {
        seed: 7,
        iters: 20,
        write_repros: false,
        ..FuzzConfig::default()
    };
    let stats = run_with_oracle(&cfg, Some(&oracle));
    assert!(
        !stats.failures.is_empty(),
        "planted bug went undetected in {} iterations",
        stats.iters_run
    );
    let f = &stats.failures[0];
    assert!(
        f.gates_after <= 8,
        "shrinker left {} gates (from {})",
        f.gates_after,
        f.gates_before
    );
    // The shrunk circuit must itself still witness the bug.
    assert!(check(&f.circuit).is_some(), "shrunk repro no longer fails");
}
