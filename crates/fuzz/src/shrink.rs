//! Delta-debugging shrinker: reduce a failing circuit while preserving the
//! failure predicate.
//!
//! The shrinker runs greedy passes to a fixpoint (or an evaluation budget):
//! splice gates out of the network, convert flip-flops to primary inputs,
//! drop gate input pins, and snap delays to whole time units. Each edit is
//! kept only if the candidate still satisfies the predicate, so the result
//! is 1-minimal with respect to the edit set — removing any single
//! remaining node loses the failure.

use mct_netlist::Circuit;

use crate::edit::{apply_plan, EditPlan};

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The reduced circuit (still satisfies the predicate).
    pub circuit: Circuit,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Accepted edits.
    pub steps: usize,
}

/// Shrinks `circuit` under `predicate` (`true` = still failing), spending at
/// most `max_evals` predicate evaluations. `circuit` itself must satisfy
/// the predicate for the result to be meaningful.
pub fn shrink(
    circuit: &Circuit,
    predicate: impl Fn(&Circuit) -> bool,
    max_evals: usize,
) -> ShrinkOutcome {
    let mut current = circuit.clone();
    let mut evals = 0usize;
    let mut steps = 0usize;

    let try_plan =
        |current: &mut Circuit, plan: &EditPlan, evals: &mut usize, steps: &mut usize| -> bool {
            if *evals >= max_evals {
                return false;
            }
            let Some(candidate) = apply_plan(current, plan) else {
                return false;
            };
            // An edit that removes nothing (e.g. splicing an unreferenced
            // gate's only use is the output list) can still change the circuit;
            // require real progress to guarantee termination.
            if candidate.num_nodes() >= current.num_nodes() && !plan.snap_delays {
                return false;
            }
            *evals += 1;
            if predicate(&candidate) {
                *current = candidate;
                *steps += 1;
                true
            } else {
                false
            }
        };

    loop {
        let mut progressed = false;

        // Pass 1: splice gates, last-declared first (removing a sink frees
        // its fan-in cone for later passes).
        let mut idx = current.gates().len();
        while idx > 0 {
            idx -= 1;
            let gates = current.gates();
            let Some(&victim) = gates.get(idx) else {
                continue;
            };
            let plan = EditPlan {
                splice: [victim.index()].into(),
                ..EditPlan::default()
            };
            progressed |= try_plan(&mut current, &plan, &mut evals, &mut steps);
        }

        // Pass 2: convert flip-flops into primary inputs.
        let mut idx = current.dffs().len();
        while idx > 0 {
            idx -= 1;
            let dffs = current.dffs();
            let Some(&victim) = dffs.get(idx) else {
                continue;
            };
            let plan = EditPlan {
                inputize: [victim.index()].into(),
                ..EditPlan::default()
            };
            progressed |= try_plan(&mut current, &plan, &mut evals, &mut steps);
        }

        // Pass 3: drop gate input pins (beyond the first).
        let mut gidx = current.gates().len();
        while gidx > 0 {
            gidx -= 1;
            let fanin = {
                let gates = current.gates();
                let Some(&gate) = gates.get(gidx) else {
                    continue;
                };
                match current.node(gate) {
                    mct_netlist::Node::Gate { inputs, .. } => inputs.len(),
                    _ => continue,
                }
            };
            for pin in (1..fanin).rev() {
                // Re-resolve by position: an accepted edit rebuilds the
                // circuit and invalidates previously fetched ids.
                let gates = current.gates();
                let Some(&gate) = gates.get(gidx) else {
                    break;
                };
                let fanin_now = match current.node(gate) {
                    mct_netlist::Node::Gate { inputs, .. } => inputs.len(),
                    _ => break,
                };
                if pin >= fanin_now {
                    continue;
                }
                let plan = EditPlan {
                    drop_pins: [(gate.index(), vec![pin])].into(),
                    ..EditPlan::default()
                };
                progressed |= try_plan(&mut current, &plan, &mut evals, &mut steps);
            }
        }

        if evals >= max_evals || !progressed {
            break;
        }
    }

    // Final cosmetic pass: whole-unit delays read better in repro files.
    let snap = EditPlan {
        snap_delays: true,
        ..EditPlan::default()
    };
    try_plan(&mut current, &snap, &mut evals, &mut steps);

    ShrinkOutcome {
        circuit: current,
        evals,
        steps,
    }
}
