//! Differential fuzzing for the minimum-cycle-time engine.
//!
//! The hardest property of the DAC 1994 reproduction to test statically is
//! the one that matters most: the certified minimum cycle time must be
//! *sound* — at any period at or above the bound, the real (event-driven,
//! delay-varied) machine behaves exactly like the zero-delay functional
//! machine. This crate turns that property, and a family of metamorphic
//! invariants around it, into a deterministic fuzzing loop:
//!
//! 1. [`generate`] builds random well-formed sequential circuits directly
//!    on the netlist API (and mutates suite/corpus circuits), with delays
//!    drawn from a rational grid that stresses the sweep's breakpoint
//!    arithmetic;
//! 2. [`oracle`] checks each candidate — differential against the
//!    simulator, metamorphic (rename / permutation / delay scaling /
//!    order×threads determinism / cache replay), and robustness
//!    (serialization round-trips, no panics);
//! 3. [`shrink`] delta-debugs any failure down to a minimal repro;
//! 4. [`corpus`] persists repros as timed `.bench` files with JSON
//!    provenance, which future runs replay and mutate.
//!
//! Everything is seeded and wall-clock-free (except the explicit time
//! budget and the one opt-in `wall_ms` stat), so a run is reproducible
//! bit-for-bit from its seed.
//!
//! # Examples
//!
//! ```
//! use mct_fuzz::{FuzzConfig, GenConfig, run};
//!
//! let cfg = FuzzConfig {
//!     iters: 2,
//!     // Tiny circuits keep the example fast; real runs use the defaults.
//!     gen: GenConfig { max_inputs: 2, max_dffs: 3, max_gates: 8, ..GenConfig::default() },
//!     ..FuzzConfig::default()
//! };
//! let stats = run(&cfg);
//! assert_eq!(stats.iters_run, 2);
//! assert!(stats.failures.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod edit;
pub mod generate;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use corpus::{load_corpus, parse_timed_bench, save_repro, write_timed_bench, Provenance};
pub use edit::{apply_plan, permute_registers, rename_signals, scale_delays, EditPlan};
pub use generate::{mutate_circuit, perturb_delays, random_circuit, GenConfig};
pub use oracle::{check_circuit, Failure, OracleCtx, OracleOptions, OracleSelect, OracleStats};
pub use runner::{run, run_with_oracle, CustomOracle, FailureRecord, FuzzConfig, FuzzStats};
pub use shrink::{shrink, ShrinkOutcome};
