//! The on-disk repro corpus: timed `.bench` files plus JSON provenance.
//!
//! ISCAS'89 `.bench` is an untimed format, but fuzzer failures are almost
//! always *timing*-triggered — a repro that loses its delays loses the bug.
//! Corpus entries therefore carry delays in comment annotations the stock
//! parser ignores, so every file stays a valid plain `.bench` circuit for
//! any other tool while round-tripping exactly through this module:
//!
//! ```text
//! # .delay <gate> <pin> <rise_millis> <fall_millis>
//! # .clock_to_q <dff> <millis>
//! # .init <dff> 1
//! ```
//!
//! The first comment line of the file (written by `write_bench`) carries
//! the circuit name and is restored on parse.
//!
//! Next to each `<stem>.bench` sits a `<stem>.json` provenance record
//! (schema 1): the master seed, iteration number, the oracle that rejected
//! the circuit, and a human-readable detail string — enough to regenerate
//! the failure from scratch or to cite it in a regression test.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mct_netlist::{
    parse_bench, write_bench, Circuit, DelayModel, NetlistError, Node, PinDelay, Time,
};
use mct_serve::Json;

/// Serializes a circuit as annotated `.bench` text; parse back with
/// [`parse_timed_bench`]. Gate delays and clock-to-Q values are emitted in
/// declaration order, so equal circuits produce byte-identical files.
pub fn write_timed_bench(circuit: &Circuit) -> String {
    let mut out = write_bench(circuit);
    for (_, node) in circuit.iter() {
        match node {
            Node::Gate {
                name, pin_delays, ..
            } => {
                for (p, d) in pin_delays.iter().enumerate() {
                    out.push_str(&format!(
                        "# .delay {name} {p} {} {}\n",
                        d.rise.millis(),
                        d.fall.millis()
                    ));
                }
            }
            Node::Dff {
                name,
                clock_to_q,
                init,
                ..
            } => {
                if !clock_to_q.is_zero() {
                    out.push_str(&format!("# .clock_to_q {name} {}\n", clock_to_q.millis()));
                }
                if *init {
                    // The stock parser defaults power-on values to 0.
                    out.push_str(&format!("# .init {name} 1\n"));
                }
            }
            Node::Input { .. } => {}
        }
    }
    out
}

fn annot_err(line: usize, message: String) -> NetlistError {
    NetlistError::Parse { line, message }
}

/// Parses annotated `.bench` text produced by [`write_timed_bench`].
///
/// The circuit structure is read by the stock parser (with unit delays);
/// `# .delay` / `# .clock_to_q` annotations then overwrite the timing.
/// Unannotated gate pins keep the unit delay. Malformed annotations are
/// structured parse errors, never panics.
pub fn parse_timed_bench(text: &str) -> Result<Circuit, NetlistError> {
    let mut circuit = parse_bench(text, &DelayModel::Unit)?;
    // The first comment line (if any, and not an annotation) is the circuit
    // name, mirroring what `write_bench` emits.
    if let Some(first) = text.lines().find(|l| !l.trim().is_empty()) {
        if let Some(name) = first.trim().strip_prefix('#') {
            let name = name.trim();
            if !name.is_empty() && !name.starts_with('.') {
                circuit.set_name(name);
            }
        }
    }
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        let Some(body) = trimmed.strip_prefix("# .") else {
            continue;
        };
        let tokens: Vec<&str> = body.split_whitespace().collect();
        match tokens.first().copied() {
            Some("delay") => {
                if tokens.len() != 5 {
                    return Err(annot_err(
                        line,
                        format!("expected `# .delay <gate> <pin> <rise> <fall>`, got `{trimmed}`"),
                    ));
                }
                let name = tokens[1];
                let pin: usize = tokens[2]
                    .parse()
                    .map_err(|_| annot_err(line, format!("bad pin index `{}`", tokens[2])))?;
                let rise = parse_millis(tokens[3], line)?;
                let fall = parse_millis(tokens[4], line)?;
                let id = circuit
                    .lookup(name)
                    .ok_or_else(|| annot_err(line, format!("unknown gate `{name}` in .delay")))?;
                circuit
                    .set_gate_pin_delay(id, pin, PinDelay::new(rise, fall))
                    .map_err(|e| annot_err(line, format!(".delay {name} {pin}: {e}")))?;
            }
            Some("clock_to_q") => {
                if tokens.len() != 3 {
                    return Err(annot_err(
                        line,
                        format!("expected `# .clock_to_q <dff> <millis>`, got `{trimmed}`"),
                    ));
                }
                let name = tokens[1];
                let c2q = parse_millis(tokens[2], line)?;
                let id = circuit.lookup(name).ok_or_else(|| {
                    annot_err(line, format!("unknown dff `{name}` in .clock_to_q"))
                })?;
                circuit
                    .set_dff_clock_to_q(id, c2q)
                    .map_err(|e| annot_err(line, format!(".clock_to_q {name}: {e}")))?;
            }
            Some("init") => {
                if tokens.len() != 3 || !matches!(tokens[2], "0" | "1") {
                    return Err(annot_err(
                        line,
                        format!("expected `# .init <dff> <0|1>`, got `{trimmed}`"),
                    ));
                }
                let name = tokens[1];
                let id = circuit
                    .lookup(name)
                    .ok_or_else(|| annot_err(line, format!("unknown dff `{name}` in .init")))?;
                circuit
                    .set_dff_init(id, tokens[2] == "1")
                    .map_err(|e| annot_err(line, format!(".init {name}: {e}")))?;
            }
            _ => {} // any other comment
        }
    }
    Ok(circuit)
}

fn parse_millis(token: &str, line: usize) -> Result<Time, NetlistError> {
    let millis: i64 = token
        .parse()
        .map_err(|_| annot_err(line, format!("bad delay value `{token}`")))?;
    if millis < 0 {
        return Err(annot_err(line, format!("negative delay `{token}`")));
    }
    Ok(Time::from_millis(millis))
}

/// Provenance of one corpus entry (schema 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// The master fuzzer seed of the run that found the failure (`0` for
    /// hand-written entries).
    pub seed: u64,
    /// Iteration index within that run.
    pub iteration: u64,
    /// Name of the oracle that rejected the circuit.
    pub oracle: String,
    /// Human-readable failure description.
    pub detail: String,
}

impl Provenance {
    /// Encodes the record (schema 1).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Int(1)),
            ("seed".into(), Json::Int(self.seed as i64)),
            ("iteration".into(), Json::Int(self.iteration as i64)),
            ("oracle".into(), Json::Str(self.oracle.clone())),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
    }

    /// Decodes a record; `None` on missing or ill-typed fields.
    pub fn from_json(value: &Json) -> Option<Provenance> {
        if value.get("schema")?.as_i64()? != 1 {
            return None;
        }
        Some(Provenance {
            seed: value.get("seed")?.as_i64()? as u64,
            iteration: value.get("iteration")?.as_i64()? as u64,
            oracle: value.get("oracle")?.as_str()?.to_string(),
            detail: value.get("detail")?.as_str()?.to_string(),
        })
    }
}

/// Writes `<stem>.bench` + `<stem>.json` into `dir` (created if missing).
/// Returns the path of the `.bench` file.
pub fn save_repro(
    dir: &Path,
    stem: &str,
    circuit: &Circuit,
    prov: &Provenance,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let bench_path = dir.join(format!("{stem}.bench"));
    fs::write(&bench_path, write_timed_bench(circuit))?;
    fs::write(
        dir.join(format!("{stem}.json")),
        prov.to_json().to_pretty() + "\n",
    )?;
    Ok(bench_path)
}

/// Loads every `*.bench` in `dir` (sorted by file name, for determinism)
/// together with its provenance record if a readable sidecar exists.
/// A missing or unreadable directory yields an empty corpus.
pub fn load_corpus(dir: &Path) -> Vec<(PathBuf, Circuit, Option<Provenance>)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bench"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let Ok(circuit) = parse_timed_bench(&text) else {
            continue;
        };
        let prov = fs::read_to_string(path.with_extension("json"))
            .ok()
            .and_then(|t| Json::parse(&t).ok())
            .and_then(|j| Provenance::from_json(&j));
        out.push((path, circuit, prov));
    }
    out
}
