//! Structure-preserving and structure-reducing circuit edits.
//!
//! Everything in this module rebuilds a [`Circuit`] from an existing one —
//! the arena representation has no removal primitives, so edits that delete
//! nodes (gate splicing, register inputization, pin dropping) re-declare the
//! surviving nodes in their original relative order and remap references.
//! The same machinery backs both the mutation operators of the generator and
//! the delta-debugging shrinker.

use std::collections::{HashMap, HashSet};

use mct_netlist::{Circuit, NetId, Node, PinDelay, Time};

/// A batch of reducing edits applied in one rebuild.
///
/// All node references are **net indices in the source circuit**
/// ([`NetId::index`]). The plan is applied as a whole: splices resolve
/// transitively, and a gate whose every pin is dropped degenerates into a
/// splice onto its first original input.
#[derive(Clone, Debug, Default)]
pub struct EditPlan {
    /// Gates to splice out: every use of the gate's output is rewired to the
    /// gate's first (pin 0) driver.
    pub splice: HashSet<usize>,
    /// Flip-flops to convert into primary inputs (cuts the feedback loop
    /// while keeping the signal available to its fanout).
    pub inputize: HashSet<usize>,
    /// Input pins to drop, per gate: `gate net index → pin positions`.
    pub drop_pins: HashMap<usize, Vec<usize>>,
    /// Snap every pin delay (and clock-to-Q) to the nearest whole time unit.
    pub snap_delays: bool,
}

impl EditPlan {
    /// Whether the plan performs no edit at all.
    pub fn is_empty(&self) -> bool {
        self.splice.is_empty()
            && self.inputize.is_empty()
            && self.drop_pins.is_empty()
            && !self.snap_delays
    }
}

fn snap(t: Time) -> Time {
    // Round to the nearest whole unit (1000 milli-ticks), halves up.
    let m = t.millis();
    Time::from_millis((m + 500).div_euclid(1000) * 1000)
}

fn snap_pin(d: PinDelay) -> PinDelay {
    PinDelay::new(snap(d.rise), snap(d.fall))
}

/// Applies `plan` to `circuit`, returning the rebuilt circuit, or `None` if
/// the result fails validation (e.g. the plan removed every node a primary
/// output depended on in a way the remap cannot express).
pub fn apply_plan(circuit: &Circuit, plan: &EditPlan) -> Option<Circuit> {
    // Where each removed net's uses are redirected, as a source-circuit id.
    let mut redirect: HashMap<usize, NetId> = HashMap::new();
    for (id, node) in circuit.iter() {
        if let Node::Gate { inputs, .. } = node {
            let dropped = plan.drop_pins.get(&id.index());
            let all_dropped = dropped.is_some_and(|d| (0..inputs.len()).all(|p| d.contains(&p)));
            if plan.splice.contains(&id.index()) || all_dropped {
                redirect.insert(id.index(), inputs[0]);
            }
        }
    }
    let resolve = |mut id: NetId| -> NetId {
        // Splice targets are always declared before the gate, so chains are
        // finite and strictly decreasing.
        while let Some(&t) = redirect.get(&id.index()) {
            id = t;
        }
        id
    };

    let mut out = Circuit::new(circuit.name());
    let mut map: HashMap<usize, NetId> = HashMap::new();
    for (id, node) in circuit.iter() {
        match node {
            Node::Input { name } => {
                map.insert(id.index(), out.try_add_input(name.clone()).ok()?);
            }
            Node::Dff {
                name,
                init,
                clock_to_q,
                skew,
                ..
            } => {
                let new = if plan.inputize.contains(&id.index()) {
                    // Inputization hands the signal to the zero-skew
                    // environment clock; the annotation dies with the
                    // register.
                    out.try_add_input(name.clone()).ok()?
                } else {
                    let c2q = if plan.snap_delays {
                        snap(*clock_to_q)
                    } else {
                        *clock_to_q
                    };
                    let new = out.try_add_dff(name.clone(), *init, c2q).ok()?;
                    if !skew.is_zero() {
                        out.set_dff_skew(new, *skew).ok()?;
                    }
                    new
                };
                map.insert(id.index(), new);
            }
            Node::Gate {
                name,
                kind,
                inputs,
                pin_delays,
            } => {
                if redirect.contains_key(&id.index()) {
                    let target = resolve(id);
                    map.insert(id.index(), *map.get(&target.index())?);
                    continue;
                }
                let dropped = plan.drop_pins.get(&id.index());
                let mut pins = Vec::new();
                let mut delays = Vec::new();
                for (p, (&src, &pd)) in inputs.iter().zip(pin_delays).enumerate() {
                    if dropped.is_some_and(|d| d.contains(&p)) {
                        continue;
                    }
                    pins.push(*map.get(&resolve(src).index())?);
                    delays.push(if plan.snap_delays { snap_pin(pd) } else { pd });
                }
                let new = out
                    .try_add_gate_with_delays(name.clone(), *kind, &pins, delays)
                    .ok()?;
                map.insert(id.index(), new);
            }
        }
    }
    for id in circuit.dffs() {
        if plan.inputize.contains(&id.index()) {
            continue;
        }
        if let Node::Dff {
            name,
            data: Some(d),
            ..
        } = circuit.node(id)
        {
            let src = *map.get(&resolve(*d).index())?;
            out.connect_dff_data(name, src).ok()?;
        }
    }
    let mut seen = HashSet::new();
    for &o in circuit.outputs() {
        let new = *map.get(&resolve(o).index())?;
        if seen.insert(new.index()) {
            out.set_output(new);
        }
    }
    out.validate().ok()?;
    Some(out)
}

/// Rebuilds the circuit with every signal renamed by `f` (called with the
/// old name and the declaration index). Structure, declaration order,
/// delays, and outputs are untouched; the circuit name is preserved.
///
/// `f` must be injective over the circuit's names or the rebuild fails.
pub fn rename_signals(circuit: &Circuit, f: impl Fn(&str, usize) -> String) -> Option<Circuit> {
    let mut out = Circuit::new(circuit.name());
    let mut map: HashMap<usize, NetId> = HashMap::new();
    let mut dff_names: Vec<(String, NetId)> = Vec::new();
    for (i, (id, node)) in circuit.iter().enumerate() {
        let name = f(node.name(), i);
        match node {
            Node::Input { .. } => {
                map.insert(id.index(), out.try_add_input(name).ok()?);
            }
            Node::Dff {
                init,
                clock_to_q,
                skew,
                data,
                ..
            } => {
                let new = out.try_add_dff(name.clone(), *init, *clock_to_q).ok()?;
                if !skew.is_zero() {
                    out.set_dff_skew(new, *skew).ok()?;
                }
                map.insert(id.index(), new);
                if let Some(d) = data {
                    dff_names.push((name, *d));
                }
            }
            Node::Gate {
                kind,
                inputs,
                pin_delays,
                ..
            } => {
                let pins: Option<Vec<NetId>> = inputs
                    .iter()
                    .map(|s| map.get(&s.index()).copied())
                    .collect();
                let new = out
                    .try_add_gate_with_delays(name, *kind, &pins?, pin_delays.clone())
                    .ok()?;
                map.insert(id.index(), new);
            }
        }
    }
    for (name, data) in dff_names {
        out.connect_dff_data(&name, *map.get(&data.index())?).ok()?;
    }
    for &o in circuit.outputs() {
        out.set_output(*map.get(&o.index())?);
    }
    out.validate().ok()?;
    Some(out)
}

/// Rebuilds the circuit with flip-flops re-declared in a permuted order:
/// primary inputs first (original relative order — input identity is
/// *positional* in the canonical content digest), then registers in
/// `dff_perm` order, then gates in their original relative order.
///
/// The content-canonical digest is invariant under this transform;
/// declaration-sensitive artifacts (the layout digest, state-bit indices
/// in diagnostics) are not.
pub fn permute_registers(circuit: &Circuit, dff_perm: &[usize]) -> Option<Circuit> {
    let dffs: Vec<NetId> = circuit.dffs();
    if dff_perm.len() != dffs.len() {
        return None;
    }
    let mut out = Circuit::new(circuit.name());
    let mut map: HashMap<usize, NetId> = HashMap::new();
    for id in circuit.inputs() {
        if let Node::Input { name } = circuit.node(id) {
            map.insert(id.index(), out.try_add_input(name.clone()).ok()?);
        }
    }
    for &p in dff_perm {
        let id = *dffs.get(p)?;
        if let Node::Dff {
            name,
            init,
            clock_to_q,
            skew,
            ..
        } = circuit.node(id)
        {
            let new = out.try_add_dff(name.clone(), *init, *clock_to_q).ok()?;
            if !skew.is_zero() {
                out.set_dff_skew(new, *skew).ok()?;
            }
            map.insert(id.index(), new);
        }
    }
    if map.len() != circuit.num_inputs() + dffs.len() {
        return None; // not a permutation
    }
    for id in circuit.gates() {
        if let Node::Gate {
            name,
            kind,
            inputs,
            pin_delays,
        } = circuit.node(id)
        {
            let pins: Option<Vec<NetId>> = inputs
                .iter()
                .map(|s| map.get(&s.index()).copied())
                .collect();
            let new = out
                .try_add_gate_with_delays(name.clone(), *kind, &pins?, pin_delays.clone())
                .ok()?;
            map.insert(id.index(), new);
        }
    }
    for id in circuit.dffs() {
        if let Node::Dff {
            name,
            data: Some(d),
            ..
        } = circuit.node(id)
        {
            out.connect_dff_data(name, *map.get(&d.index())?).ok()?;
        }
    }
    for &o in circuit.outputs() {
        out.set_output(*map.get(&o.index())?);
    }
    out.validate().ok()?;
    Some(out)
}

/// Returns a copy of the circuit with every pin delay, clock-to-Q delay,
/// and clock-skew annotation scaled by the exact rational `num/den` —
/// skews are time quantities, so uniform time scaling must carry them or
/// the scaled machine is not the same machine on a different clock.
pub fn scale_delays(circuit: &Circuit, num: i64, den: i64) -> Circuit {
    let mut out = circuit.clone();
    for id in circuit.gates() {
        if let Node::Gate { pin_delays, .. } = circuit.node(id) {
            for (p, pd) in pin_delays.iter().enumerate() {
                let scaled = PinDelay::new(
                    pd.rise.scale_rational(num, den),
                    pd.fall.scale_rational(num, den),
                );
                out.set_gate_pin_delay(id, p, scaled)
                    .expect("same topology");
            }
        }
    }
    for id in circuit.dffs() {
        if let Node::Dff {
            clock_to_q, skew, ..
        } = circuit.node(id)
        {
            out.set_dff_clock_to_q(id, clock_to_q.scale_rational(num, den))
                .expect("same topology");
            out.set_dff_skew(id, skew.scale_rational(num, den))
                .expect("same topology");
        }
    }
    out
}
