//! The fuzzing loop: generate or mutate, check, shrink, record.
//!
//! Determinism contract: everything in [`FuzzStats`] is a pure function of
//! the configuration (seed, iteration count, oracle selection, corpus
//! contents). Each iteration derives its own RNG from the master stream, so
//! a time-budget cutoff truncates the run without shifting any iteration's
//! randomness. Wall-clock time never enters the stats — the CLI reports it
//! separately on stderr (and as the single documented `wall_ms` JSON
//! field, when explicitly requested).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use mct_gen::standard_suite;
use mct_netlist::Circuit;
use mct_prng::SmallRng;
use mct_serve::Json;

use crate::corpus::{load_corpus, save_repro, Provenance};
use crate::generate::{mutate_circuit, random_circuit, GenConfig};
use crate::oracle::{check_circuit, Failure, OracleCtx, OracleOptions, OracleSelect, OracleStats};
use crate::shrink::shrink;

/// Configuration of one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Iterations to attempt.
    pub iters: u64,
    /// Optional wall-clock budget; the loop stops (deterministically per
    /// iteration boundary, nondeterministically in *which* boundary) once
    /// it is exceeded.
    pub time_budget_ms: Option<u64>,
    /// Corpus directory: existing `*.bench` entries join the mutation pool,
    /// and new shrunk repros are written here (when [`Self::write_repros`]).
    pub corpus_dir: Option<PathBuf>,
    /// Which oracles run.
    pub select: OracleSelect,
    /// Oracle tuning.
    pub oracle: OracleOptions,
    /// Generator size limits.
    pub gen: GenConfig,
    /// Predicate-evaluation budget per shrink.
    pub shrink_evals: usize,
    /// Every `mutate_every`-th iteration mutates a pool circuit instead of
    /// generating a fresh one (0 disables mutation).
    pub mutate_every: u64,
    /// Whether shrunk failures are persisted into [`Self::corpus_dir`].
    pub write_repros: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            iters: 100,
            time_budget_ms: None,
            corpus_dir: None,
            select: OracleSelect::All,
            oracle: OracleOptions::default(),
            gen: GenConfig::default(),
            shrink_evals: 300,
            mutate_every: 4,
            write_repros: true,
        }
    }
}

/// An external failure predicate injected in place of the built-in stack —
/// used by regression tests to plant a known bug and verify the fuzzer
/// catches and shrinks it.
pub struct CustomOracle<'a> {
    /// Oracle name recorded in failures and provenance.
    pub name: &'static str,
    /// Returns a failure description, or `None` if the circuit passes.
    pub check: &'a (dyn Fn(&Circuit) -> Option<String> + 'a),
}

/// One recorded failure.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Iteration that produced the failing circuit.
    pub iteration: u64,
    /// Oracle that rejected it.
    pub oracle: String,
    /// Failure description.
    pub detail: String,
    /// Gate count before shrinking.
    pub gates_before: usize,
    /// Gate count after shrinking.
    pub gates_after: usize,
    /// Flip-flop count after shrinking.
    pub dffs_after: usize,
    /// File stem of the persisted repro, if one was written.
    pub repro: Option<String>,
    /// The shrunk circuit itself.
    pub circuit: Circuit,
}

/// Deterministic result of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzStats {
    /// Master seed of the run.
    pub seed: u64,
    /// Iterations actually executed.
    pub iters_run: u64,
    /// Candidates built by the generator.
    pub generated: u64,
    /// Candidates built by mutating a pool circuit.
    pub mutated: u64,
    /// Corpus entries that joined the mutation pool.
    pub corpus_loaded: usize,
    /// Oracle-side counters.
    pub oracle: OracleStats,
    /// Predicate evaluations spent shrinking.
    pub shrink_evals: u64,
    /// Whether the wall-clock budget cut the run short.
    pub budget_exhausted: bool,
    /// Every failure found, in iteration order.
    pub failures: Vec<FailureRecord>,
}

impl FuzzStats {
    /// Encodes the stats. `wall_ms` is the one nondeterministic field;
    /// pass `None` for byte-reproducible output.
    pub fn to_json(&self, wall_ms: Option<u64>) -> Json {
        let failures = self
            .failures
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("iteration".into(), Json::Int(f.iteration as i64)),
                    ("oracle".into(), Json::Str(f.oracle.clone())),
                    ("detail".into(), Json::Str(f.detail.clone())),
                    ("gates_before".into(), Json::Int(f.gates_before as i64)),
                    ("gates_after".into(), Json::Int(f.gates_after as i64)),
                    ("dffs_after".into(), Json::Int(f.dffs_after as i64)),
                    (
                        "repro".into(),
                        match &f.repro {
                            Some(s) => Json::Str(s.clone()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("seed".into(), Json::Int(self.seed as i64)),
            ("iters_run".into(), Json::Int(self.iters_run as i64)),
            ("generated".into(), Json::Int(self.generated as i64)),
            ("mutated".into(), Json::Int(self.mutated as i64)),
            ("corpus_loaded".into(), Json::Int(self.corpus_loaded as i64)),
            ("analyses".into(), Json::Int(self.oracle.analyses as i64)),
            ("sims".into(), Json::Int(self.oracle.sims as i64)),
            (
                "analysis_errors".into(),
                Json::Int(self.oracle.analysis_errors as i64),
            ),
            (
                "analysis_timeouts".into(),
                Json::Int(self.oracle.analysis_timeouts as i64),
            ),
            (
                "sweeps_capped".into(),
                Json::Int(self.oracle.sweeps_capped as i64),
            ),
            (
                "sharp_probes".into(),
                Json::Int(self.oracle.sharp_probes as i64),
            ),
            (
                "sharp_confirmed".into(),
                Json::Int(self.oracle.sharp_confirmed as i64),
            ),
            (
                "cache_replays".into(),
                Json::Int(self.oracle.cache_replays as i64),
            ),
            (
                "snapshot_roundtrips".into(),
                Json::Int(self.oracle.snapshot_roundtrips as i64),
            ),
            (
                "decompose_checks".into(),
                Json::Int(self.oracle.decompose_checks as i64),
            ),
            (
                "sigma_checks".into(),
                Json::Int(self.oracle.sigma_checks as i64),
            ),
            (
                "skew_checks".into(),
                Json::Int(self.oracle.skew_checks as i64),
            ),
            ("shrink_evals".into(), Json::Int(self.shrink_evals as i64)),
            ("budget_exhausted".into(), Json::Bool(self.budget_exhausted)),
            ("failures".into(), Json::Arr(failures)),
        ];
        if let Some(ms) = wall_ms {
            fields.push(("wall_ms".into(), Json::Int(ms as i64)));
        }
        Json::Obj(fields)
    }

    /// Renders the human-readable stats table (deterministic).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fuzz seed {}\n", self.seed));
        out.push_str(&format!(
            "  iterations      {:>8}   (generated {}, mutated {})\n",
            self.iters_run, self.generated, self.mutated
        ));
        out.push_str(&format!("  corpus loaded   {:>8}\n", self.corpus_loaded));
        out.push_str(&format!(
            "  analyses        {:>8}   (errors {}, timeouts {}, capped sweeps {})\n",
            self.oracle.analyses,
            self.oracle.analysis_errors,
            self.oracle.analysis_timeouts,
            self.oracle.sweeps_capped
        ));
        out.push_str(&format!("  simulations     {:>8}\n", self.oracle.sims));
        out.push_str(&format!(
            "  sharpness       {:>8} confirmed / {} probed\n",
            self.oracle.sharp_confirmed, self.oracle.sharp_probes
        ));
        out.push_str(&format!(
            "  cache replays   {:>8}\n",
            self.oracle.cache_replays
        ));
        out.push_str(&format!(
            "  snapshot rtrips {:>8}\n",
            self.oracle.snapshot_roundtrips
        ));
        out.push_str(&format!(
            "  decompose checks{:>8}\n",
            self.oracle.decompose_checks
        ));
        out.push_str(&format!(
            "  sigma checks    {:>8}\n",
            self.oracle.sigma_checks
        ));
        out.push_str(&format!(
            "  skew checks     {:>8}\n",
            self.oracle.skew_checks
        ));
        if self.budget_exhausted {
            out.push_str("  time budget exhausted\n");
        }
        out.push_str(&format!("  failures        {:>8}\n", self.failures.len()));
        for f in &self.failures {
            out.push_str(&format!(
                "    iter {:>5} [{}] {} gates -> {} gates, {} dffs{}\n",
                f.iteration,
                f.oracle,
                f.gates_before,
                f.gates_after,
                f.dffs_after,
                match &f.repro {
                    Some(s) => format!("  ({s}.bench)"),
                    None => String::new(),
                }
            ));
            let first = f.detail.lines().next().unwrap_or("");
            out.push_str(&format!("      {first}\n"));
        }
        out
    }
}

fn pool_filter(c: &Circuit) -> bool {
    c.num_dffs() <= 8 && c.num_gates() <= 60 && c.num_inputs() <= 6
}

/// Runs the built-in oracle stack.
pub fn run(cfg: &FuzzConfig) -> FuzzStats {
    run_with_oracle(cfg, None)
}

/// Runs the fuzzing loop, with `custom` replacing the built-in stack when
/// provided.
pub fn run_with_oracle(cfg: &FuzzConfig, custom: Option<&CustomOracle<'_>>) -> FuzzStats {
    let mut stats = FuzzStats {
        seed: cfg.seed,
        ..FuzzStats::default()
    };
    let mut ctx = OracleCtx::new(cfg.select, cfg.oracle.clone());

    // Mutation pool: small standard-suite circuits plus the corpus.
    let mut pool: Vec<Circuit> = standard_suite()
        .into_iter()
        .map(|e| e.circuit)
        .filter(pool_filter)
        .collect();
    if let Some(dir) = &cfg.corpus_dir {
        for (_, c, _) in load_corpus(dir) {
            if pool_filter(&c) {
                stats.corpus_loaded += 1;
                pool.push(c);
            }
        }
    }

    let started = Instant::now();
    let mut master = SmallRng::seed_from_u64(cfg.seed);
    for i in 0..cfg.iters {
        if let Some(budget) = cfg.time_budget_ms {
            if started.elapsed().as_millis() as u64 >= budget {
                stats.budget_exhausted = true;
                break;
            }
        }
        let iter_seed = master.next_u64();
        let mut rng = SmallRng::seed_from_u64(iter_seed);
        let mutate = cfg.mutate_every > 0 && !pool.is_empty() && (i + 1) % cfg.mutate_every == 0;
        let candidate = if mutate {
            stats.mutated += 1;
            let base = &pool[rng.gen_range(0..pool.len())];
            mutate_circuit(base, &mut rng, i)
        } else {
            stats.generated += 1;
            random_circuit(&mut rng, &cfg.gen, i)
        };
        stats.iters_run = i + 1;

        let failure = check_candidate(&mut ctx, custom, &candidate, iter_seed);
        let Some(failure) = failure else {
            continue;
        };

        // Shrink under "the same oracle still rejects (or the stack still
        // panics)". Scratch contexts keep the main counters comparable
        // across runs that find failures at different sizes.
        let shrink_select = OracleSelect::parse(failure.oracle).unwrap_or(cfg.select);
        let shrink_opts = cfg.oracle.clone();
        let predicate = |c: &Circuit| -> bool {
            let mut scratch = OracleCtx::new(shrink_select, shrink_opts.clone());
            // A panic is still the failure, hence unwrap_or(true).
            catch_unwind(AssertUnwindSafe(|| match custom {
                Some(co) => (co.check)(c).is_some(),
                None => check_circuit(&mut scratch, c, iter_seed).is_some(),
            }))
            .unwrap_or(true)
        };
        let reduced = shrink(&candidate, predicate, cfg.shrink_evals);
        stats.shrink_evals += reduced.evals as u64;

        let mut record = FailureRecord {
            iteration: i,
            oracle: failure.oracle.to_string(),
            detail: failure.detail.clone(),
            gates_before: candidate.num_gates(),
            gates_after: reduced.circuit.num_gates(),
            dffs_after: reduced.circuit.num_dffs(),
            repro: None,
            circuit: reduced.circuit.clone(),
        };
        if cfg.write_repros {
            if let Some(dir) = &cfg.corpus_dir {
                let stem = format!("shrunk-s{}-i{:05}", cfg.seed, i);
                let mut repro = reduced.circuit;
                repro.set_name(stem.clone());
                let prov = Provenance {
                    seed: cfg.seed,
                    iteration: i,
                    oracle: failure.oracle.to_string(),
                    detail: failure.detail.clone(),
                };
                if save_repro(dir, &stem, &repro, &prov).is_ok() {
                    record.repro = Some(stem);
                }
            }
        }
        stats.failures.push(record);
    }
    stats.oracle = ctx.stats;
    stats
}

fn check_candidate(
    ctx: &mut OracleCtx,
    custom: Option<&CustomOracle<'_>>,
    candidate: &Circuit,
    iter_seed: u64,
) -> Option<Failure> {
    let result = catch_unwind(AssertUnwindSafe(|| match custom {
        Some(co) => (co.check)(candidate).map(|detail| Failure {
            oracle: co.name,
            detail,
        }),
        None => check_circuit(ctx, candidate, iter_seed),
    }));
    match result {
        Ok(f) => f,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Some(Failure {
                oracle: "robustness",
                detail: format!("panic in oracle stack: {msg}"),
            })
        }
    }
}
