//! Structured random circuit generation and corpus mutation.
//!
//! The generator builds random sequential circuits directly on the
//! [`Circuit`] API — never through the text parsers — so every candidate is
//! well-formed by construction: the gate network is a DAG (gates only
//! reference earlier declarations) and every feedback loop passes through a
//! flip-flop (data pins are connected last, to arbitrary nets).
//!
//! Delays are drawn from a rational grid chosen to stress the sweep's
//! breakpoint arithmetic `τ = k/j`: values like 333 and 3333 milli-ticks
//! produce breakpoints with awkward denominators, while the round multiples
//! of 1000 land candidate periods exactly *on* breakpoint boundaries, where
//! off-by-one bugs in interval endpoints would hide.

use mct_netlist::{Circuit, GateKind, NetId, PinDelay, Time};
use mct_prng::SmallRng;

use crate::edit::{apply_plan, permute_registers, rename_signals, EditPlan};

/// The delay grid, in milli-ticks. A mix of breakpoint-hostile values
/// (non-divisors like 333/3333), unit multiples (exactly on breakpoints),
/// and halves/quarters.
pub const DELAY_GRID_MILLIS: &[i64] = &[
    250, 333, 500, 750, 1000, 1250, 1500, 2000, 2500, 3000, 3333, 4000, 5000,
];

/// Size limits for generated circuits. The defaults keep every candidate
/// small enough that a full analyzer run takes milliseconds, which is what
/// makes per-iteration differential checking affordable.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Inclusive upper bound on primary inputs (at least 1 is generated).
    pub max_inputs: usize,
    /// Inclusive upper bound on flip-flops (at least 1 is generated).
    pub max_dffs: usize,
    /// Inclusive upper bound on gates (at least 2 are generated).
    pub max_gates: usize,
    /// Inclusive upper bound on gate fan-in.
    pub max_fanin: usize,
    /// Bias pin delays toward the top of [`DELAY_GRID_MILLIS`]. Under
    /// bounded delay variation the per-class shift interval width scales
    /// with the delay itself, so large delays give each class several
    /// feasible shifts — the regime that exercises the Φ-subtree pruning
    /// walk instead of degenerate one-combination products.
    pub wide_delays: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_inputs: 3,
            max_dffs: 6,
            max_gates: 20,
            max_fanin: 4,
            wide_delays: false,
        }
    }
}

fn grid_delay(rng: &mut SmallRng, wide: bool) -> Time {
    // Wide mode keeps a 1-in-4 draw from the full grid so small delays
    // (and their awkward breakpoints) still appear.
    let lo = if wide && rng.gen_range(0..4usize) != 0 {
        DELAY_GRID_MILLIS.len() / 2
    } else {
        0
    };
    Time::from_millis(DELAY_GRID_MILLIS[rng.gen_range(lo..DELAY_GRID_MILLIS.len())])
}

fn pin_delay(rng: &mut SmallRng, wide: bool) -> PinDelay {
    let rise = grid_delay(rng, wide);
    if rng.gen_range(0..4usize) == 0 {
        // Rise/fall-asymmetric pin: the transition-delay machinery must
        // track both edges separately.
        PinDelay::new(rise, grid_delay(rng, wide))
    } else {
        PinDelay::symmetric(rise)
    }
}

const GATE_KINDS: &[GateKind] = &[
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Not,
    GateKind::Buf,
];

/// Generates a random well-formed sequential circuit named `fuzz-<tag>`.
pub fn random_circuit(rng: &mut SmallRng, cfg: &GenConfig, tag: u64) -> Circuit {
    let mut c = Circuit::new(format!("fuzz-{tag}"));
    let n_inputs = rng.gen_range(1..=cfg.max_inputs.max(1));
    let n_dffs = rng.gen_range(1..=cfg.max_dffs.max(1));
    let n_gates = rng.gen_range(2..=cfg.max_gates.max(2));

    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..n_inputs {
        pool.push(c.add_input(format!("in{i}")));
    }
    for i in 0..n_dffs {
        let c2q = Time::from_millis([0, 250, 500][rng.gen_range(0..3usize)]);
        pool.push(c.add_dff(format!("q{i}"), rng.gen_bool(), c2q));
    }
    let mut gates: Vec<NetId> = Vec::new();
    for i in 0..n_gates {
        let kind = GATE_KINDS[rng.gen_range(0..GATE_KINDS.len())];
        let fanin = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            rng.gen_range(2..=cfg.max_fanin.max(2))
        };
        let pins: Vec<NetId> = (0..fanin)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        let delays: Vec<PinDelay> = (0..fanin)
            .map(|_| pin_delay(rng, cfg.wide_delays))
            .collect();
        let g = c.add_gate_with_delays(format!("g{i}"), kind, &pins, delays);
        pool.push(g);
        gates.push(g);
    }
    // Feedback: each register samples a random net — preferentially a gate,
    // so most loops exercise real combinational logic.
    for i in 0..n_dffs {
        let src = if !gates.is_empty() && rng.gen_range(0..8usize) != 0 {
            gates[rng.gen_range(0..gates.len())]
        } else {
            pool[rng.gen_range(0..pool.len())]
        };
        c.connect_dff_data(&format!("q{i}"), src)
            .expect("fresh dff");
    }
    let n_outputs = rng.gen_range(1..=2usize);
    for _ in 0..n_outputs {
        c.set_output(pool[rng.gen_range(0..pool.len())]);
    }
    debug_assert!(c.validate().is_ok());
    c
}

/// Mutates an existing circuit: perturb delays, splice a gate out, convert
/// a register to an input, rename signals, or permute leaf declarations.
/// Falls back to delay perturbation when a structural edit fails validation.
pub fn mutate_circuit(base: &Circuit, rng: &mut SmallRng, tag: u64) -> Circuit {
    let mut out = match rng.gen_range(0..5usize) {
        // Splice a random gate out of the network.
        1 if base.num_gates() > 1 => {
            let gates = base.gates();
            let victim = gates[rng.gen_range(0..gates.len())];
            let plan = EditPlan {
                splice: [victim.index()].into(),
                ..EditPlan::default()
            };
            apply_plan(base, &plan)
        }
        // Convert a random flip-flop into a primary input.
        2 if base.num_dffs() > 1 => {
            let dffs = base.dffs();
            let victim = dffs[rng.gen_range(0..dffs.len())];
            let plan = EditPlan {
                inputize: [victim.index()].into(),
                ..EditPlan::default()
            };
            apply_plan(base, &plan)
        }
        // Deterministic rename of every signal.
        3 => rename_signals(base, |_, i| format!("m{tag}_{i}")),
        // Random permutation of the register declaration order.
        4 => {
            let n = base.num_dffs();
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            permute_registers(base, &perm)
        }
        _ => None,
    }
    .unwrap_or_else(|| base.clone());
    perturb_delays(&mut out, rng);
    out.set_name(format!("fuzz-{tag}"));
    out
}

/// Re-draws roughly a quarter of the pin delays (and occasionally a
/// clock-to-Q) from the grid, in place.
pub fn perturb_delays(c: &mut Circuit, rng: &mut SmallRng) {
    for id in c.gates() {
        let fanin = match c.node(id) {
            mct_netlist::Node::Gate { inputs, .. } => inputs.len(),
            _ => unreachable!("gates() returned a non-gate"),
        };
        for p in 0..fanin {
            if rng.gen_range(0..4usize) == 0 {
                let d = pin_delay(rng, false);
                c.set_gate_pin_delay(id, p, d).expect("pin in range");
            }
        }
    }
    for id in c.dffs() {
        if rng.gen_range(0..8usize) == 0 {
            let c2q = Time::from_millis([0, 250, 500][rng.gen_range(0..3usize)]);
            c.set_dff_clock_to_q(id, c2q).expect("dff id");
        }
    }
}
