//! The oracle stack: differential, metamorphic, and robustness checks.
//!
//! Every candidate circuit runs through up to three independent oracles:
//!
//! * **differential** — the event-driven simulator is the dynamic golden
//!   model. If the engine certifies minimum cycle time `D_s`, then at any
//!   period `τ ≥ D_s` the timed machine must match the zero-delay
//!   functional machine, under worst-case *and* randomly varied bounded
//!   delays. A mismatch is an unsound bound — the worst bug class.
//!   Sharpness (divergence *below* the bound) is probed but recorded as a
//!   statistic only: the paper's `C_x` is a sufficient condition, so a
//!   period it rejects need not produce an observable divergence.
//! * **metamorphic** — transformations with known effect on the answer:
//!   renaming signals and permuting leaf declarations preserve the
//!   content-canonical digest (and renames preserve the report
//!   byte-for-byte); scaling every delay by `k` scales the exact bound by
//!   exactly `k`; the answer is bit-identical across variable orders and
//!   thread counts; a canonical-identity cache replay returns the original
//!   bytes.
//! * **robustness** — serialization round-trips: the timed `.bench` corpus
//!   format reproduces the circuit exactly (both canonical digests), the
//!   BLIF round-trip preserves sequential behaviour, and the
//!   reachable-state snapshot survives the persistent store's binary
//!   encoding (export → encode → decode → import into a fresh manager)
//!   with a byte-identical warm-start report. Panics anywhere in the stack
//!   are caught by the runner and reported as robustness failures.
//! * **decompose** — cone-of-influence decomposition is a pure performance
//!   lever: the recombined per-cone report must be byte-identical to the
//!   monolithic one, at one worker and with the cone pool parallelized.
//! * **sigma** — the pruned variable-delay Φ walk is a pure performance
//!   lever too: it must visit exactly the feasible subsequence the flat
//!   odometer examines, so the report is byte-identical across
//!   {flat, pruned} × thread counts (the CLI pairs this oracle with a
//!   wide-delay generator bias and path-coupled LPs so the pruning bound
//!   actually engages).
//! * **skew** — the clock-skew optimization tier can never worsen the
//!   bound; its witness machine, re-annotated and re-certified, must run
//!   correctly through the event simulator strictly above the bound it
//!   claims; and explicitly-zero `# .skew` annotations are an arithmetic
//!   identity — the report is byte-identical to the unannotated baseline.

use mct_core::{
    MctAnalyzer, MctOptions, MctReport, ReachSnapshot, ReorderSchedule, SigmaStrategy, VarOrder,
};
use mct_lp::Rat;
use mct_netlist::{circuit_digests, parse_blif, write_blif, Circuit, DelayModel, Time};
use mct_serve::report::{options_fingerprint, report_to_json};
use mct_serve::{CacheKey, ResultCache};
use mct_sim::{functional_trace, DelayMode, SimConfig, Simulator};

use crate::corpus::{parse_timed_bench, write_timed_bench};
use crate::edit::{permute_registers, rename_signals, scale_delays};

/// Which oracles to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OracleSelect {
    /// The full stack (the default).
    #[default]
    All,
    /// Only the simulator-differential oracle.
    Differential,
    /// Only the metamorphic checks.
    Metamorphic,
    /// Only the serialization/robustness checks.
    Robustness,
    /// Only the mono-vs-decomposed identity check.
    Decompose,
    /// Only the flat-vs-pruned Φ-enumeration identity check.
    Sigma,
    /// Only the clock-skew optimization soundness checks.
    Skew,
}

impl OracleSelect {
    /// Parses a CLI oracle name.
    pub fn parse(s: &str) -> Option<OracleSelect> {
        match s {
            "all" => Some(OracleSelect::All),
            "differential" => Some(OracleSelect::Differential),
            "metamorphic" => Some(OracleSelect::Metamorphic),
            "robustness" => Some(OracleSelect::Robustness),
            "decompose" => Some(OracleSelect::Decompose),
            "sigma" => Some(OracleSelect::Sigma),
            "skew" => Some(OracleSelect::Skew),
            _ => None,
        }
    }

    fn differential(self) -> bool {
        matches!(self, OracleSelect::All | OracleSelect::Differential)
    }

    fn metamorphic(self) -> bool {
        matches!(self, OracleSelect::All | OracleSelect::Metamorphic)
    }

    fn robustness(self) -> bool {
        matches!(self, OracleSelect::All | OracleSelect::Robustness)
    }

    fn decompose(self) -> bool {
        matches!(self, OracleSelect::All | OracleSelect::Decompose)
    }

    fn sigma(self) -> bool {
        matches!(self, OracleSelect::All | OracleSelect::Sigma)
    }

    fn skew(self) -> bool {
        matches!(self, OracleSelect::All | OracleSelect::Skew)
    }
}

/// One oracle rejection.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The oracle that rejected the circuit.
    pub oracle: &'static str,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// Tuning knobs for the oracle stack.
#[derive(Clone, Debug)]
pub struct OracleOptions {
    /// Base analysis options. Differential certification requires the delay
    /// variation here to cover the simulated corners (the default paper
    /// setting's 90–100% interval does).
    pub analysis: MctOptions,
    /// Clock cycles per simulation.
    pub sim_cycles: usize,
    /// Number of independently seeded random-variation simulations.
    pub sim_seeds: usize,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            // The paper setting, except for a small deterministic sweep
            // budget. Random circuits routinely have a tiny floor relative
            // to `L`, which makes the breakpoint grid dense: a 3-gate
            // machine can legitimately have hundreds of candidate periods,
            // and the full oracle stack re-runs each sweep ~6 times. A
            // *wall-clock* budget would make the stats machine-dependent;
            // capping the candidate count keeps every run bit-identical
            // while bounding the work. Healthy generator output sweeps
            // well under 64 candidates; capped sweeps still yield a sound
            // (partial) certificate and are counted in
            // [`OracleStats::sweeps_capped`], never silently dropped.
            analysis: MctOptions {
                max_candidates: 64,
                ..MctOptions::paper()
            },
            sim_cycles: 24,
            sim_seeds: 2,
        }
    }
}

/// Deterministic oracle-side counters (no wall-clock anywhere).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Analyzer invocations.
    pub analyses: u64,
    /// Timing simulations run.
    pub sims: u64,
    /// Analyses that returned a structured error and were skipped.
    pub analysis_errors: u64,
    /// Analyses that hit the per-circuit time budget and were skipped.
    pub analysis_timeouts: u64,
    /// Base sweeps truncated by the deterministic candidate budget
    /// ([`MctOptions::max_candidates`]). The partial bound is still sound
    /// and the oracles still run; this only records that the sweep did not
    /// reach its floor.
    pub sweeps_capped: u64,
    /// Circuits probed below the certified bound.
    pub sharp_probes: u64,
    /// Probes that observed real divergence below the bound.
    pub sharp_confirmed: u64,
    /// Canonical cache replays exercised.
    pub cache_replays: u64,
    /// Reach-snapshot store round-trips completed (export → encode →
    /// decode → import → warm start, byte-identical report).
    pub snapshot_roundtrips: u64,
    /// Mono-vs-decomposed identity comparisons completed.
    pub decompose_checks: u64,
    /// Flat-vs-pruned Φ-enumeration identity comparisons completed.
    pub sigma_checks: u64,
    /// Skew-tier soundness checks completed.
    pub skew_checks: u64,
}

/// Shared oracle state across one fuzzing run.
pub struct OracleCtx {
    /// Which oracles run.
    pub select: OracleSelect,
    /// Tuning knobs.
    pub opts: OracleOptions,
    /// In-process result cache used by the metamorphic replay check.
    pub cache: ResultCache,
    /// Counters.
    pub stats: OracleStats,
}

impl OracleCtx {
    /// Creates a context with an in-memory cache.
    pub fn new(select: OracleSelect, opts: OracleOptions) -> Self {
        OracleCtx {
            select,
            opts,
            cache: ResultCache::new(256, None, None),
            stats: OracleStats::default(),
        }
    }
}

/// A deterministic per-(seed, cycle, pin) input bit — a pure function, so
/// the functional reference and every simulation see the same stimulus.
fn input_bit(seed: u64, cycle: usize, pin: usize) -> bool {
    let mut x = seed
        ^ (cycle as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (pin as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x & 1 == 1
}

fn analyze(c: &Circuit, opts: &MctOptions) -> Result<MctReport, String> {
    let mut an = MctAnalyzer::new(c).map_err(|e| format!("analyzer construction: {e:?}"))?;
    an.run(opts).map_err(|e| format!("analysis: {e:?}"))
}

/// Ceil of a non-negative rational in milli-ticks.
fn ceil_millis(r: Rat) -> i64 {
    let (n, d) = (r.num(), r.den());
    if n <= 0 {
        0
    } else {
        (n + d - 1).div_euclid(d)
    }
}

/// Runs the selected oracles on one candidate. `stim_seed` drives the
/// simulated input sequences and the random delay draws (derive it from the
/// iteration seed for reproducibility).
///
/// Returns the first failure found, or `None` if the circuit passes.
pub fn check_circuit(ctx: &mut OracleCtx, c: &Circuit, stim_seed: u64) -> Option<Failure> {
    // One base analysis feeds every oracle.
    ctx.stats.analyses += 1;
    let base = match analyze(c, &ctx.opts.analysis) {
        Ok(r) => r,
        Err(_) => {
            // Structured engine errors (σ explosion, cone limits) are
            // legitimate refusals, not bugs; count and move on.
            ctx.stats.analysis_errors += 1;
            return None;
        }
    };
    if base.timed_out {
        ctx.stats.analysis_timeouts += 1;
        return None;
    }
    // A capped sweep counted the (max_candidates + 1)-th breakpoint before
    // stopping; the partial certificate is still sound, so the oracles
    // proceed — but the truncation is recorded, never silent.
    if base.candidates_checked > ctx.opts.analysis.max_candidates {
        ctx.stats.sweeps_capped += 1;
    }
    let base_json = report_to_json(&base).to_compact();

    if ctx.select.differential() {
        if let Some(f) = differential(ctx, c, &base, stim_seed) {
            return Some(f);
        }
    }
    if ctx.select.metamorphic() {
        if let Some(f) = metamorphic(ctx, c, &base, &base_json, stim_seed) {
            return Some(f);
        }
    }
    if ctx.select.robustness() {
        if let Some(f) = robustness(ctx, c, stim_seed) {
            return Some(f);
        }
    }
    if ctx.select.decompose() {
        if let Some(f) = decompose_identity(ctx, c, &base_json) {
            return Some(f);
        }
    }
    if ctx.select.sigma() {
        if let Some(f) = sigma_identity(ctx, c, &base_json) {
            return Some(f);
        }
    }
    if ctx.select.skew() {
        if let Some(f) = skew_soundness(ctx, c, &base, &base_json, stim_seed) {
            return Some(f);
        }
    }
    None
}

/// The skew oracle. Three properties, in order:
///
/// 1. optimizing the skews can never worsen the bound (and for an
///    annotation-free circuit the reported zero-skew baseline *is* the
///    base sweep);
/// 2. the witness is real — applying `witness_millis` to the circuit and
///    re-certifying yields the bound the tier reported (when it claimed
///    an improvement), and the witness machine replayed through the event
///    simulator strictly above that bound matches the functional machine
///    (the engine samples strictly before the capture instant, so the `+1`
///    milli keeps the saturated setup arrivals on the safe side — the same
///    convention as the differential oracle);
/// 3. explicitly-zero `# .skew` annotations are an arithmetic identity:
///    spelling them out in the corpus format and re-analyzing reproduces
///    the baseline report byte for byte.
fn skew_soundness(
    ctx: &mut OracleCtx,
    c: &Circuit,
    base: &MctReport,
    base_json: &str,
    stim_seed: u64,
) -> Option<Failure> {
    let opts = MctOptions {
        skew: true,
        ..ctx.opts.analysis.clone()
    };
    ctx.stats.analyses += 1;
    let report = match analyze(c, &opts) {
        Ok(r) => r,
        Err(_) => {
            ctx.stats.analysis_errors += 1;
            return None;
        }
    };
    if report.timed_out {
        ctx.stats.analysis_timeouts += 1;
        return None;
    }
    let Some(sk) = report.skew.clone() else {
        return Some(Failure {
            oracle: "skew",
            detail: "skew mode returned a report without a skew section".into(),
        });
    };

    // 1. Monotonicity and baseline consistency.
    if sk.optimal_bound > sk.zero_skew_bound {
        return Some(Failure {
            oracle: "skew",
            detail: format!(
                "skew optimization worsened the bound: zero-skew {}/{}ms, optimal {}/{}ms",
                sk.zero_skew_bound.num(),
                sk.zero_skew_bound.den(),
                sk.optimal_bound.num(),
                sk.optimal_bound.den()
            ),
        });
    }
    if sk.improved != (sk.optimal_bound < sk.zero_skew_bound) {
        return Some(Failure {
            oracle: "skew",
            detail: format!("inconsistent `improved` flag in the skew report: {sk:?}"),
        });
    }
    if !c.has_skew() && sk.zero_skew_bound != base.bound_exact {
        return Some(Failure {
            oracle: "skew",
            detail: format!(
                "zero-skew baseline {}/{}ms disagrees with the base sweep {}/{}ms \
                 on an annotation-free circuit",
                sk.zero_skew_bound.num(),
                sk.zero_skew_bound.den(),
                base.bound_exact.num(),
                base.bound_exact.den()
            ),
        });
    }
    if sk.witness_millis.len() != c.num_dffs() {
        return Some(Failure {
            oracle: "skew",
            detail: format!(
                "witness has {} entries for {} registers",
                sk.witness_millis.len(),
                c.num_dffs()
            ),
        });
    }

    // 2. The witness machine is real. When the witness coincides with the
    // circuit's own (absent) annotations, the base report already certifies
    // it; otherwise annotate and re-certify.
    let trivial_witness = !c.has_skew() && sk.witness_millis.iter().all(|&s| s == 0);
    let mut witness = c.clone();
    for (q, &s) in witness.dffs().into_iter().zip(&sk.witness_millis) {
        witness
            .set_dff_skew(q, Time::from_millis(s))
            .expect("dff id");
    }
    let wbound = if trivial_witness {
        Some(base.bound_exact)
    } else {
        ctx.stats.analyses += 1;
        match analyze(&witness, &ctx.opts.analysis) {
            Ok(wr) if !wr.timed_out => Some(wr.bound_exact),
            Ok(_) => {
                ctx.stats.analysis_timeouts += 1;
                None
            }
            Err(_) => {
                // Legitimate structured refusal (the annotated machine can
                // have a different σ profile); counted, not a failure.
                ctx.stats.analysis_errors += 1;
                None
            }
        }
    };
    if let Some(wbound) = wbound {
        if sk.improved && wbound != sk.optimal_bound {
            return Some(Failure {
                oracle: "skew",
                detail: format!(
                    "witness machine certifies {}/{}ms but the tier reported optimal {}/{}ms",
                    wbound.num(),
                    wbound.den(),
                    sk.optimal_bound.num(),
                    sk.optimal_bound.den()
                ),
            });
        }
        let sim = match Simulator::new(&witness) {
            Ok(s) => s,
            Err(e) => {
                return Some(Failure {
                    oracle: "skew",
                    detail: format!("simulator rejected the witness machine: {e:?}"),
                })
            }
        };
        let reference = functional_trace(&witness, ctx.opts.sim_cycles, |n, i| {
            input_bit(stim_seed, n, i)
        });
        let tau = Time::from_millis(ceil_millis(wbound).max(0) + 1);
        let mut modes = vec![DelayMode::Max];
        if let Some((num, den)) = ctx.opts.analysis.delay_variation {
            modes.push(DelayMode::Scaled { num, den });
        }
        for mode in modes {
            if !run_sim(ctx, &sim, tau, mode, stim_seed, &reference) {
                return Some(Failure {
                    oracle: "skew",
                    detail: format!(
                        "witness machine diverges from its functional trace at \
                         certified-safe period {}ms under {mode:?} (witness bound {}/{}ms)",
                        tau.millis(),
                        wbound.num(),
                        wbound.den()
                    ),
                });
            }
        }
    }

    // 3. Explicit zeros are an identity (zero-skew registers only —
    // nonzero annotations are semantics and stay untouched).
    let mut text = write_timed_bench(c);
    let mut annotated = false;
    for q in c.dffs() {
        if c.dff_skew(q).expect("dff id").is_zero() {
            text.push_str(&format!("# .skew {} 0\n", c.net_name(q)));
            annotated = true;
        }
    }
    if annotated {
        match parse_timed_bench(&text) {
            Ok(zeroed) => {
                if circuit_digests(&zeroed).content != circuit_digests(c).content {
                    return Some(Failure {
                        oracle: "skew",
                        detail: "explicit zero skew annotations changed the content digest".into(),
                    });
                }
                ctx.stats.analyses += 1;
                match analyze(&zeroed, &ctx.opts.analysis) {
                    Ok(r) => {
                        let j = report_to_json(&r).to_compact();
                        if j != base_json {
                            return Some(Failure {
                                oracle: "skew",
                                detail: format!(
                                    "explicit zero skew annotations changed the report:\n  \
                                     base: {base_json}\n  got:  {j}"
                                ),
                            });
                        }
                    }
                    Err(_) => ctx.stats.analysis_errors += 1,
                }
            }
            Err(e) => {
                return Some(Failure {
                    oracle: "skew",
                    detail: format!("zero-skew-annotated corpus text failed to parse: {e}"),
                })
            }
        }
    }
    ctx.stats.skew_checks += 1;
    None
}

/// The decompose oracle: slicing into cones of influence and recombining
/// must reproduce the monolithic report byte for byte — sequentially and
/// with the cone pool parallelized. An engine error on the decomposed path
/// is also a failure: the monolithic analysis already succeeded, and the
/// two paths must refuse identically.
fn decompose_identity(ctx: &mut OracleCtx, c: &Circuit, base_json: &str) -> Option<Failure> {
    for threads in [1, 3] {
        let opts = MctOptions {
            decompose: true,
            num_threads: threads,
            ..ctx.opts.analysis.clone()
        };
        ctx.stats.analyses += 1;
        match analyze(c, &opts) {
            Ok(r) => {
                let j = report_to_json(&r).to_compact();
                if j != base_json {
                    return Some(Failure {
                        oracle: "decompose",
                        detail: format!(
                            "decomposed report differs from monolithic (threads={threads}):\n  \
                             mono: {base_json}\n  cone: {j}"
                        ),
                    });
                }
            }
            Err(e) => {
                return Some(Failure {
                    oracle: "decompose",
                    detail: format!(
                        "decomposed analysis errored where monolithic succeeded \
                         (threads={threads}): {e}"
                    ),
                })
            }
        }
    }
    ctx.stats.decompose_checks += 1;
    None
}

/// The sigma oracle: the pruned Φ walk visits exactly the LP-feasible
/// subsequence of the flat odometer, so the report must be byte-identical
/// across {flat, pruned} × thread counts. The base report is the default
/// pruned single-thread run; an engine error on any variant is also a
/// failure — both strategies gate the σ explosion on the *unpruned*
/// combination count, so they must refuse identically.
fn sigma_identity(ctx: &mut OracleCtx, c: &Circuit, base_json: &str) -> Option<Failure> {
    for (sigma, threads) in [
        (SigmaStrategy::Flat, 1),
        (SigmaStrategy::Flat, 4),
        (SigmaStrategy::Pruned, 4),
    ] {
        let opts = MctOptions {
            sigma,
            num_threads: threads,
            ..ctx.opts.analysis.clone()
        };
        ctx.stats.analyses += 1;
        match analyze(c, &opts) {
            Ok(r) => {
                let j = report_to_json(&r).to_compact();
                if j != base_json {
                    return Some(Failure {
                        oracle: "sigma",
                        detail: format!(
                            "report differs under sigma={sigma:?} threads={threads}:\n  \
                             base: {base_json}\n  got:  {j}"
                        ),
                    });
                }
            }
            Err(e) => {
                return Some(Failure {
                    oracle: "sigma",
                    detail: format!(
                        "sigma={sigma:?} analysis errored where the base run succeeded \
                         (threads={threads}): {e}"
                    ),
                })
            }
        }
    }
    ctx.stats.sigma_checks += 1;
    None
}

fn run_sim(
    ctx: &mut OracleCtx,
    sim: &Simulator<'_>,
    period: Time,
    mode: DelayMode,
    stim_seed: u64,
    reference: &(Vec<Vec<bool>>, Vec<Vec<bool>>),
) -> bool {
    ctx.stats.sims += 1;
    let cfg = SimConfig::at_period(period)
        .with_cycles(ctx.opts.sim_cycles)
        .with_delay_mode(mode);
    let trace = sim.run(&cfg, |n, i| input_bit(stim_seed, n, i));
    trace.matches(&reference.0, &reference.1)
}

fn differential(
    ctx: &mut OracleCtx,
    c: &Circuit,
    report: &MctReport,
    stim_seed: u64,
) -> Option<Failure> {
    let sim = match Simulator::new(c) {
        Ok(s) => s,
        Err(e) => {
            return Some(Failure {
                oracle: "differential",
                detail: format!("simulator rejected a validated circuit: {e:?}"),
            })
        }
    };
    let reference = functional_trace(c, ctx.opts.sim_cycles, |n, i| input_bit(stim_seed, n, i));
    // One milli-tick above the certified bound: safely inside the valid
    // region, immune to boundary ties.
    let tau_safe = Time::from_millis(ceil_millis(report.bound_exact).max(0) + 1);

    let mut modes = vec![DelayMode::Max];
    if let Some((num, den)) = ctx.opts.analysis.delay_variation {
        // The certificate covers the whole variation interval; exercise its
        // lower corner and random interior points.
        modes.push(DelayMode::Scaled { num, den });
        let min_pct = (num * 100 / den).clamp(1, 100) as u8;
        for k in 0..ctx.opts.sim_seeds {
            modes.push(DelayMode::RandomUniform {
                min_factor_percent: min_pct,
                seed: stim_seed.wrapping_add(k as u64 + 1),
            });
        }
    }
    for mode in modes {
        if !run_sim(ctx, &sim, tau_safe, mode, stim_seed, &reference) {
            return Some(Failure {
                oracle: "differential",
                detail: format!(
                    "divergence from functional trace at certified-safe period \
                     {}ms under {mode:?} (bound_exact = {}/{}ms)",
                    tau_safe.millis(),
                    report.bound_exact.num(),
                    report.bound_exact.den()
                ),
            });
        }
    }
    // Sharpness probe (statistic only; C_x is sufficient, not necessary).
    if report.first_failing_tau.is_some() {
        let below = ceil_millis(report.bound_exact) - 1;
        if below > 0 {
            ctx.stats.sharp_probes += 1;
            if !run_sim(
                ctx,
                &sim,
                Time::from_millis(below),
                DelayMode::Max,
                stim_seed,
                &reference,
            ) {
                ctx.stats.sharp_confirmed += 1;
            }
        }
    }
    None
}

fn metamorphic(
    ctx: &mut OracleCtx,
    c: &Circuit,
    base: &MctReport,
    base_json: &str,
    stim_seed: u64,
) -> Option<Failure> {
    let digests = circuit_digests(c);

    // 1. Rename: content digest and the full report are invariant.
    let renamed = rename_signals(c, |_, i| format!("n{i}"))?; // cannot fail: fresh names
    let rd = circuit_digests(&renamed);
    if rd.content != digests.content {
        return Some(Failure {
            oracle: "metamorphic",
            detail: "content digest changed under signal rename".into(),
        });
    }
    ctx.stats.analyses += 1;
    match analyze(&renamed, &ctx.opts.analysis) {
        Ok(r) => {
            let j = report_to_json(&r).to_compact();
            if j != base_json {
                return Some(Failure {
                    oracle: "metamorphic",
                    detail: format!(
                        "report changed under signal rename:\n  base: {base_json}\n  renamed: {j}"
                    ),
                });
            }
        }
        Err(_) => ctx.stats.analysis_errors += 1,
    }

    // 2. Register-declaration permutation: content digest invariant, and
    //    the canonical-identity cache replays the original bytes.
    let ndffs = c.num_dffs();
    if ndffs > 1 {
        let mut perm: Vec<usize> = (0..ndffs).collect();
        // Deterministic rotation + a seed-driven swap.
        perm.rotate_left(1);
        let a = (stim_seed as usize) % ndffs;
        let b = (stim_seed >> 16) as usize % ndffs;
        perm.swap(a, b);
        if let Some(permuted) = permute_registers(c, &perm) {
            let pd = circuit_digests(&permuted);
            if pd.content != digests.content {
                return Some(Failure {
                    oracle: "metamorphic",
                    detail: "content digest changed under register permutation".into(),
                });
            }
            let fp = options_fingerprint(&ctx.opts.analysis);
            let key = CacheKey {
                circuit: digests.content,
                options: fp,
            };
            ctx.cache.insert(key, digests.layout, base_json.to_string());
            let replay_key = CacheKey {
                circuit: pd.content,
                options: fp,
            };
            ctx.stats.cache_replays += 1;
            match ctx.cache.get(replay_key) {
                Some(hit) if hit.report_json == base_json => {}
                Some(_) => {
                    return Some(Failure {
                        oracle: "metamorphic",
                        detail: "cache replay returned different bytes for a permuted copy".into(),
                    })
                }
                None => {
                    return Some(Failure {
                        oracle: "metamorphic",
                        detail: "cache miss for a content-identical permuted copy".into(),
                    })
                }
            }
        }
    }

    // 3. Uniform delay scaling by k scales the exact bound by exactly k —
    //    for *completed* sweeps. A candidate-capped sweep truncates at a
    //    grid index, and the grid itself is not exactly scale-invariant:
    //    minimum delays are d·9/10 truncated to integer milli-units, so
    //    ⌊3d·9/10⌋ ≠ 3⌊d·9/10⌋ in general. Only the failing-interval sup
    //    (built from exact path delays) scales exactly, and a capped
    //    partial bound is a grid point, not a sup.
    const K: i64 = 3;
    let capped = |r: &MctReport| r.candidates_checked > ctx.opts.analysis.max_candidates;
    let scaled = scale_delays(c, K, 1);
    ctx.stats.analyses += 1;
    match analyze(&scaled, &ctx.opts.analysis) {
        Ok(r) => {
            if !r.timed_out
                && !capped(base)
                && !capped(&r)
                && r.bound_exact != base.bound_exact * Rat::from_int(K)
            {
                return Some(Failure {
                    oracle: "metamorphic",
                    detail: format!(
                        "delay scaling ×{K}: bound {}/{} → {}/{} (expected exact ×{K})",
                        base.bound_exact.num(),
                        base.bound_exact.den(),
                        r.bound_exact.num(),
                        r.bound_exact.den()
                    ),
                });
            }
        }
        Err(_) => ctx.stats.analysis_errors += 1,
    }

    // 4. Variable order × thread count: bit-identical reports.
    for (ordering, threads) in [
        (VarOrder::Alloc, 1),
        (VarOrder::Static, 2),
        (VarOrder::Sift, 4),
    ] {
        let opts = MctOptions {
            ordering,
            num_threads: threads,
            ..ctx.opts.analysis.clone()
        };
        ctx.stats.analyses += 1;
        match analyze(c, &opts) {
            Ok(r) => {
                let j = report_to_json(&r).to_compact();
                if j != base_json {
                    return Some(Failure {
                        oracle: "metamorphic",
                        detail: format!(
                            "report differs under ordering={ordering:?} threads={threads}:\n  \
                             base: {base_json}\n  got:  {j}"
                        ),
                    });
                }
            }
            Err(_) => ctx.stats.analysis_errors += 1,
        }
    }

    // 5. Reorder schedule × sigma strategy under sifting: schedules only
    //    decide *when* the kernel reorders, never what the sweep reports.
    for (schedule, sigma, threads) in [
        (ReorderSchedule::GrowthRatio(1.5), SigmaStrategy::Pruned, 1),
        (ReorderSchedule::AlwaysOnce, SigmaStrategy::Flat, 2),
        (ReorderSchedule::TimeBudget(20), SigmaStrategy::Pruned, 2),
        (ReorderSchedule::Adaptive, SigmaStrategy::Flat, 1),
    ] {
        let opts = MctOptions {
            ordering: VarOrder::Sift,
            reorder_schedule: schedule,
            sigma,
            num_threads: threads,
            ..ctx.opts.analysis.clone()
        };
        ctx.stats.analyses += 1;
        match analyze(c, &opts) {
            Ok(r) => {
                let j = report_to_json(&r).to_compact();
                if j != base_json {
                    return Some(Failure {
                        oracle: "metamorphic",
                        detail: format!(
                            "report differs under schedule={schedule:?} sigma={sigma:?} \
                             threads={threads}:\n  base: {base_json}\n  got:  {j}"
                        ),
                    });
                }
            }
            Err(_) => ctx.stats.analysis_errors += 1,
        }
    }
    None
}

fn robustness(ctx: &mut OracleCtx, c: &Circuit, stim_seed: u64) -> Option<Failure> {
    // Timed-bench round trip is exact: both canonical digests and the name.
    let text = write_timed_bench(c);
    match parse_timed_bench(&text) {
        Ok(back) => {
            let (a, b) = (circuit_digests(c), circuit_digests(&back));
            if a.content != b.content || a.layout != b.layout || back.name() != c.name() {
                return Some(Failure {
                    oracle: "robustness",
                    detail: "timed .bench round-trip changed the circuit".into(),
                });
            }
        }
        Err(e) => {
            return Some(Failure {
                oracle: "robustness",
                detail: format!("timed .bench round-trip failed to parse: {e}"),
            })
        }
    }
    // BLIF drops delays but must preserve sequential behaviour exactly.
    let blif = write_blif(c);
    match parse_blif(&blif, &DelayModel::Unit) {
        Ok(back) => {
            if back.num_dffs() != c.num_dffs() || back.num_inputs() != c.num_inputs() {
                return Some(Failure {
                    oracle: "robustness",
                    detail: "BLIF round-trip changed the interface".into(),
                });
            }
            let cycles = 8;
            let f0 = functional_trace(c, cycles, |n, i| input_bit(stim_seed, n, i));
            let f1 = functional_trace(&back, cycles, |n, i| input_bit(stim_seed, n, i));
            if f0 != f1 {
                return Some(Failure {
                    oracle: "robustness",
                    detail: "BLIF round-trip changed sequential behaviour".into(),
                });
            }
        }
        Err(e) => {
            return Some(Failure {
                oracle: "robustness",
                detail: format!("BLIF round-trip failed to parse: {e}"),
            })
        }
    }
    // Reach-snapshot persistence round trip: the snapshot the analysis
    // produces must survive the store's binary encoding, import into a
    // *fresh* manager (identity variable order), and warm-start a repeat
    // analysis to the byte-identical report.
    if ctx.opts.analysis.use_reachability {
        ctx.stats.analyses += 1;
        let cold = MctAnalyzer::new(c)
            .map_err(|e| format!("analyzer construction: {e:?}"))
            .and_then(|mut an| {
                an.run_warm(&ctx.opts.analysis, None)
                    .map_err(|e| format!("analysis: {e:?}"))
            });
        match cold {
            Ok((cold_report, Some(snap))) if !cold_report.timed_out => {
                let bytes = mct_store::encode_reach(&snap.export_data());
                let decoded = match mct_store::decode_reach(&bytes) {
                    Ok(d) => d,
                    Err(e) => {
                        return Some(Failure {
                            oracle: "robustness",
                            detail: format!(
                                "reach snapshot failed to decode its own encoding: {e}"
                            ),
                        })
                    }
                };
                let imported = match ReachSnapshot::import_data(&decoded) {
                    Ok(s) => s,
                    Err(e) => {
                        return Some(Failure {
                            oracle: "robustness",
                            detail: format!("round-tripped reach snapshot failed to import: {e:?}"),
                        })
                    }
                };
                ctx.stats.analyses += 1;
                let warm = MctAnalyzer::new(c)
                    .map_err(|e| format!("analyzer construction: {e:?}"))
                    .and_then(|mut an| {
                        an.run_warm(&ctx.opts.analysis, Some(&imported))
                            .map_err(|e| format!("analysis: {e:?}"))
                    });
                match warm {
                    Ok((warm_report, _)) => {
                        let cold_j = report_to_json(&cold_report).to_compact();
                        let warm_j = report_to_json(&warm_report).to_compact();
                        if warm_j != cold_j {
                            return Some(Failure {
                                oracle: "robustness",
                                detail: format!(
                                    "warm start from a round-tripped snapshot changed the \
                                     report:\n  cold: {cold_j}\n  warm: {warm_j}"
                                ),
                            });
                        }
                        ctx.stats.snapshot_roundtrips += 1;
                    }
                    Err(e) => {
                        return Some(Failure {
                            oracle: "robustness",
                            detail: format!(
                                "warm start from a round-tripped snapshot errored where the \
                                 cold run succeeded: {e}"
                            ),
                        })
                    }
                }
            }
            // No snapshot (early exit before reachability) or a partial
            // report — nothing to round-trip.
            Ok(_) => {}
            Err(_) => ctx.stats.analysis_errors += 1,
        }
    }
    None
}
