//! The worked circuits of the paper, plus the transcribed s27.

use mct_netlist::{parse_bench, Circuit, DelayModel, GateKind, Time};

/// The paper's Figure-2 circuit: a single flip-flop `f` whose next-state
/// logic is `g = f(t−1.5)·f̄(t−4)·f(t−5) + f̄(t−2)` — functionally an
/// inverter with a redundant long path. The primary output is `f` (the
/// register), as in Example 2.
///
/// Ground truth from the paper: topological delay 5, floating delay 4,
/// 2-vector delay 2 (an *incorrect* bound), exact minimum cycle time 2.5.
pub fn paper_figure2() -> Circuit {
    let mut c = Circuit::new("fig2");
    let f = c.add_dff("f", true, Time::ZERO);
    let cb = c.add_gate("c", GateKind::Buf, &[f], Time::from_f64(1.5));
    let d = c.add_gate("d", GateKind::Not, &[f], Time::from_f64(4.0));
    let e = c.add_gate("e", GateKind::Buf, &[f], Time::from_f64(5.0));
    let a = c.add_gate("a", GateKind::And, &[cb, d, e], Time::ZERO);
    let b = c.add_gate("b", GateKind::Not, &[f], Time::from_f64(2.0));
    let g = c.add_gate("g", GateKind::Or, &[a, b], Time::ZERO);
    c.connect_dff_data("f", g).unwrap();
    c.set_output(f);
    c
}

/// Figure 2 with the combinational node `g` exposed as the primary output
/// instead of the register — the configuration under which the
/// combinational delay engines see the full cone (used by the delay
/// comparisons of Example 2).
pub fn paper_figure2_comb_output() -> Circuit {
    let mut c = paper_figure2();
    let g = c.lookup("g").expect("g exists");
    c.clear_outputs();
    c.set_output(g);
    c
}

/// The ISCAS'89 s27 benchmark (transcribed from the public-domain
/// distribution): 4 inputs, 1 output, 3 flip-flops, 10 gates.
pub const S27_BENCH: &str = "\
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Parses [`S27_BENCH`] with the given delay model.
///
/// # Panics
///
/// Never panics in practice: the embedded text is valid.
pub fn s27(model: &DelayModel) -> Circuit {
    let mut c = parse_bench(S27_BENCH, model).expect("embedded s27 parses");
    c.set_name("s27");
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_structure() {
        let c = paper_figure2();
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 6);
        assert!(c.validate().is_ok());
        // Functionally an inverter: two steps return to the start.
        let s0 = c.initial_state();
        let (s1, _) = c.step(&s0, &[]);
        let (s2, _) = c.step(&s1, &[]);
        assert_ne!(s0, s1);
        assert_eq!(s0, s2);
    }

    #[test]
    fn figure2_comb_output_variant() {
        let c = paper_figure2_comb_output();
        let g = c.lookup("g").unwrap();
        assert_eq!(c.outputs(), &[g]);
    }

    #[test]
    fn s27_parses_and_steps() {
        let c = s27(&DelayModel::Mapped);
        assert_eq!(c.name(), "s27");
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_gates(), 10);
        assert_eq!(c.outputs().len(), 1);
        // Drive it a few cycles; it must stay deterministic and move
        // through several states under a varied input sequence.
        let mut state = c.initial_state();
        let mut seen = std::collections::HashSet::new();
        for n in 0..32 {
            let ins: Vec<bool> = (0..4).map(|i| (n * (i + 3)) % (i + 2) == 0).collect();
            let (next, _) = c.step(&state, &ins);
            seen.insert(next.clone());
            state = next;
        }
        assert!(seen.len() >= 2, "machine should visit several states");
    }
}
