//! Parameterized FSM families.
//!
//! Each generator plants a specific structural mechanism from the paper's
//! analysis, so the benchmark suite can reproduce the *shape* of its
//! Table 1 without the original ISCAS'89 netlists:
//!
//! | family | mechanism | expected delay relations |
//! |---|---|---|
//! | [`toggler`], [`ring_counter`], [`johnson_counter`], [`lfsr`], [`binary_counter`], [`random_fsm`] | none (neutral) | MCT ≈ floating ≈ topological |
//! | [`periodic_slack`] | the Figure-2 pattern: a redundant long path cancelled by the *periodicity* of the state sequence | MCT < floating < topological |
//! | [`unreachable_slack`] | a long path sensitized only from *unreachable* states | MCT < floating = topological (the paper's `‡` rows) |
//! | [`comb_false_path`] | a statically false long path | MCT = floating < topological (the paper's `§` rows) |
//! | [`deep_false_path`] | extreme unreachable slack | MCT < topological / 4 (the paper's s38584 row) |
//! | [`skew_ring`], [`skew_pipeline`] | unbalanced loop stages whose slack moves under intentional clock skew | skew-optimal MCT < zero-skew MCT by an exact margin |

use mct_netlist::{Circuit, GateKind, NetId, Time};
use mct_prng::SmallRng;

fn t(v: f64) -> Time {
    Time::from_f64(v)
}

/// A single inverter loop: `q' = ¬q` with the given gate delay.
pub fn toggler(delay: Time) -> Circuit {
    let mut c = Circuit::new("toggler");
    let q = c.add_dff("q", false, Time::ZERO);
    let nq = c.add_gate("nq", GateKind::Not, &[q], delay);
    c.connect_dff_data("q", nq).unwrap();
    c.set_output(q);
    c
}

/// A one-hot ring counter: bit 0 initialized to 1, each bit a buffered copy
/// of its predecessor.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ring_counter(bits: usize, delay: Time) -> Circuit {
    assert!(bits > 0, "need at least one bit");
    let mut c = Circuit::new("ring");
    let qs: Vec<NetId> = (0..bits)
        .map(|i| c.add_dff(format!("q{i}"), i == 0, Time::ZERO))
        .collect();
    for i in 0..bits {
        let from = qs[(i + bits - 1) % bits];
        let b = c.add_gate(format!("b{i}"), GateKind::Buf, &[from], delay);
        c.connect_dff_data(&format!("q{i}"), b).unwrap();
    }
    c.set_output(qs[bits - 1]);
    c
}

/// A Johnson (twisted-ring) counter: like the ring but the feedback is
/// inverted, visiting `2·bits` of the `2^bits` states.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn johnson_counter(bits: usize, delay: Time) -> Circuit {
    assert!(bits > 0, "need at least one bit");
    let mut c = Circuit::new("johnson");
    let qs: Vec<NetId> = (0..bits)
        .map(|i| c.add_dff(format!("q{i}"), false, Time::ZERO))
        .collect();
    let nlast = c.add_gate("twist", GateKind::Not, &[qs[bits - 1]], delay);
    c.connect_dff_data("q0", nlast).unwrap();
    for i in 1..bits {
        let b = c.add_gate(format!("b{i}"), GateKind::Buf, &[qs[i - 1]], delay);
        c.connect_dff_data(&format!("q{i}"), b).unwrap();
    }
    c.set_output(qs[bits - 1]);
    c
}

/// A Fibonacci LFSR with the given feedback taps (bit indices).
///
/// # Panics
///
/// Panics if `bits == 0`, `taps` is empty, or a tap is out of range.
pub fn lfsr(bits: usize, taps: &[usize], delay: Time) -> Circuit {
    assert!(bits > 0 && !taps.is_empty(), "need bits and taps");
    assert!(taps.iter().all(|&tp| tp < bits), "tap out of range");
    let mut c = Circuit::new("lfsr");
    let qs: Vec<NetId> = (0..bits)
        .map(|i| c.add_dff(format!("q{i}"), i == 0, Time::ZERO))
        .collect();
    let tap_nets: Vec<NetId> = taps.iter().map(|&tp| qs[tp]).collect();
    let feedback = if tap_nets.len() == 1 {
        c.add_gate("fb", GateKind::Buf, &[tap_nets[0]], delay)
    } else {
        c.add_gate("fb", GateKind::Xor, &tap_nets, delay)
    };
    c.connect_dff_data("q0", feedback).unwrap();
    for i in 1..bits {
        let b = c.add_gate(format!("sh{i}"), GateKind::Buf, &[qs[i - 1]], delay);
        c.connect_dff_data(&format!("q{i}"), b).unwrap();
    }
    c.set_output(qs[bits - 1]);
    c
}

/// A binary ripple-carry up-counter with enable input: bit `i` toggles when
/// all lower bits (and the enable) are 1. The carry chain gives genuinely
/// sensitizable long paths, so every delay metric coincides.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn binary_counter(bits: usize, stage_delay: Time) -> Circuit {
    assert!(bits > 0, "need at least one bit");
    let mut c = Circuit::new("counter");
    let en = c.add_input("en");
    let qs: Vec<NetId> = (0..bits)
        .map(|i| c.add_dff(format!("q{i}"), false, Time::ZERO))
        .collect();
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let nx = c.add_gate(format!("nx{i}"), GateKind::Xor, &[q, carry], stage_delay);
        c.connect_dff_data(&format!("q{i}"), nx).unwrap();
        if i + 1 < bits {
            carry = c.add_gate(format!("cy{i}"), GateKind::And, &[carry, q], stage_delay);
        }
    }
    c.set_output(qs[bits - 1]);
    c
}

/// A deterministic random FSM: `gates` random 2-input gates over the
/// registers and inputs, with the last `state_bits` gate outputs feeding the
/// registers. Delays are random multiples of 0.1 units. Neutral with high
/// probability.
///
/// # Panics
///
/// Panics if `state_bits == 0` or `gates < state_bits`.
pub fn random_fsm(seed: u64, state_bits: usize, input_bits: usize, gates: usize) -> Circuit {
    assert!(state_bits > 0, "need at least one state bit");
    assert!(gates >= state_bits, "need at least one gate per state bit");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(format!("rand{seed}"));
    let mut nets: Vec<NetId> = Vec::new();
    for i in 0..input_bits {
        nets.push(c.add_input(format!("in{i}")));
    }
    for i in 0..state_bits {
        nets.push(c.add_dff(format!("q{i}"), rng.gen_bool(), Time::ZERO));
    }
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
    ];
    for g in 0..gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let a = nets[rng.gen_range(0..nets.len())];
        let inputs: Vec<NetId> = if kind.max_inputs() == Some(1) {
            vec![a]
        } else {
            vec![a, nets[rng.gen_range(0..nets.len())]]
        };
        let delay = Time::from_millis(rng.gen_range(1..=20i64) * 100);
        nets.push(c.add_gate(format!("g{g}"), kind, &inputs, delay));
    }
    for i in 0..state_bits {
        let src = nets[nets.len() - 1 - (i % state_bits.min(8))];
        c.connect_dff_data(&format!("q{i}"), src).unwrap();
    }
    c.set_output(*nets.last().expect("nonempty"));
    c
}

/// The Figure-2 *periodicity* pattern planted on a toggler, composed with a
/// fast ring counter for bulk: the toggler's next-state function is
/// `¬q ∨ (q(d1)·q̄(d2)·q(d3))` with `d1 < d2 < d3`. The product term is
/// identically zero in steady state, the floating delay is `d2`, the
/// topological delay `d3`, and the exact minimum cycle time sits near
/// `d3/2` — strictly below the floating delay.
///
/// With the paper's `(1.5, 4, 5)` (and `base_bits = 0` extras) this *is*
/// Figure 2.
///
/// # Panics
///
/// Panics unless `d1 < d2 < d3`.
pub fn periodic_slack(d1: Time, d2: Time, d3: Time, base_bits: usize) -> Circuit {
    assert!(d1 < d2 && d2 < d3, "delays must be ascending");
    let mut c = Circuit::new("periodic_slack");
    let q = c.add_dff("q", true, Time::ZERO);
    let c1 = c.add_gate("c1", GateKind::Buf, &[q], d1);
    let c2 = c.add_gate("c2", GateKind::Not, &[q], d2);
    let c3 = c.add_gate("c3", GateKind::Buf, &[q], d3);
    let prod = c.add_gate("prod", GateKind::And, &[c1, c2, c3], Time::ZERO);
    let nq = c.add_gate("nq", GateKind::Not, &[q], d1.min(t(1.0)).max(t(0.5)));
    let nx = c.add_gate("nx", GateKind::Or, &[prod, nq], Time::ZERO);
    c.connect_dff_data("q", nx).unwrap();
    c.set_output(q);
    // Bulk: an independent fast ring.
    let ring_delay = t(0.5);
    let qs: Vec<NetId> = (0..base_bits)
        .map(|i| c.add_dff(format!("r{i}"), i == 0, Time::ZERO))
        .collect();
    for i in 0..base_bits {
        let from = qs[(i + base_bits - 1) % base_bits];
        let b = c.add_gate(format!("rb{i}"), GateKind::Buf, &[from], ring_delay);
        c.connect_dff_data(&format!("r{i}"), b).unwrap();
    }
    if let Some(&last) = qs.last() {
        c.set_output(last);
    }
    c
}

/// The *reachability* pattern: a `bits`-wide one-hot rotator whose last
/// next-state function carries a trap term `q0 ∧ q1 ∧ slow(q_{bits−1})`
/// (XOR-ed in). The condition `q0 ∧ q1` never holds one-hot, so the slow
/// path of delay `d_long` is sequentially false — but it *is* floating-mode
/// sensitizable, making the floating delay equal the topological delay
/// while the true minimum cycle time is set by the base delay `d_base`.
/// This is the paper's `‡`-row shape (e.g. s526: 22.5 → 18.4).
///
/// # Panics
///
/// Panics unless `bits ≥ 3` and `d_base < d_long`.
pub fn unreachable_slack(bits: usize, d_base: Time, d_long: Time) -> Circuit {
    assert!(bits >= 3, "need at least three bits for the rotator");
    assert!(d_base < d_long, "the trap path must be the longest");
    let mut c = Circuit::new("unreachable_slack");
    let qs: Vec<NetId> = (0..bits)
        .map(|i| c.add_dff(format!("q{i}"), i == 0, Time::ZERO))
        .collect();
    for i in 0..bits - 1 {
        let from = qs[(i + bits - 1) % bits];
        let b = c.add_gate(format!("b{i}"), GateKind::Buf, &[from], d_base);
        c.connect_dff_data(&format!("q{i}"), b).unwrap();
    }
    let slow = c.add_gate("slow", GateKind::Buf, &[qs[bits - 1]], d_long);
    let trap = c.add_gate("trap", GateKind::And, &[qs[0], qs[1], slow], Time::ZERO);
    let base = c.add_gate("base", GateKind::Buf, &[qs[bits - 2]], d_base);
    let nx = c.add_gate("nx", GateKind::Xor, &[base, trap], Time::ZERO);
    c.connect_dff_data(&format!("q{}", bits - 1), nx).unwrap();
    c.set_output(qs[bits - 1]);
    c
}

/// A *combinationally* false long path (the paper's `§` rows, where the
/// floating delay already beats the topological delay): the long path is
/// blocked by a constant-false side condition `a ∧ ¬a` with zero-delay
/// guards, so even single-vector analysis sees through it.
///
/// # Panics
///
/// Panics unless `d_fast < d_slow`.
pub fn comb_false_path(d_fast: Time, d_slow: Time, state_bits: usize) -> Circuit {
    assert!(d_fast < d_slow, "the false path must be the longest");
    assert!(state_bits >= 1, "need state");
    let mut c = Circuit::new("comb_false_path");
    let a = c.add_input("a");
    let qs: Vec<NetId> = (0..state_bits)
        .map(|i| c.add_dff(format!("q{i}"), false, Time::ZERO))
        .collect();
    // dead = slow(q0) ∧ a ∧ ¬a — structurally long, logically 0.
    let slow = c.add_gate("slow", GateKind::Buf, &[qs[0]], d_slow);
    let na = c.add_gate("na", GateKind::Not, &[a], Time::ZERO);
    let dead = c.add_gate("dead", GateKind::And, &[slow, a, na], Time::ZERO);
    // live next-state: a shifted xor of state and input.
    for i in 0..state_bits {
        let prev = qs[(i + state_bits - 1) % state_bits];
        let live = c.add_gate(format!("live{i}"), GateKind::Xor, &[prev, a], d_fast);
        let nx = if i == 0 {
            c.add_gate("nx0", GateKind::Or, &[live, dead], Time::ZERO)
        } else {
            live
        };
        c.connect_dff_data(&format!("q{i}"), nx).unwrap();
    }
    c.set_output(qs[state_bits - 1]);
    c
}

/// A composite machine: several independent components (a binary counter,
/// an LFSR, and an unreachable-slack rotator) side by side, approximating
/// the heterogeneous structure of the larger ISCAS'89 circuits. The overall
/// minimum cycle time is governed by the slowest component; with the slack
/// rotator planted as the critical one, the sequential bound beats the
/// floating delay on a machine big enough for the analysis cost to be
/// visible in the CPU columns.
///
/// # Panics
///
/// Panics if any component parameter is degenerate (see the component
/// generators).
pub fn composite(
    counter_bits: usize,
    lfsr_bits: usize,
    rotator_bits: usize,
    d_base: Time,
    d_long: Time,
) -> Circuit {
    let mut c = Circuit::new("composite");
    // Component 1: ripple counter with enable.
    let en = c.add_input("en");
    let qs: Vec<NetId> = (0..counter_bits)
        .map(|i| c.add_dff(format!("c{i}"), false, Time::ZERO))
        .collect();
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let nx = c.add_gate(format!("cnx{i}"), GateKind::Xor, &[q, carry], t(0.4));
        c.connect_dff_data(&format!("c{i}"), nx).unwrap();
        if i + 1 < counter_bits {
            carry = c.add_gate(format!("ccy{i}"), GateKind::And, &[carry, q], t(0.4));
        }
    }
    c.set_output(qs[counter_bits - 1]);
    // Component 2: LFSR.
    let ls: Vec<NetId> = (0..lfsr_bits)
        .map(|i| c.add_dff(format!("l{i}"), i == 0, Time::ZERO))
        .collect();
    let fb = c.add_gate(
        "lfb",
        GateKind::Xor,
        &[ls[lfsr_bits - 1], ls[lfsr_bits / 2]],
        t(1.0),
    );
    c.connect_dff_data("l0", fb).unwrap();
    for i in 1..lfsr_bits {
        let b = c.add_gate(format!("lsh{i}"), GateKind::Buf, &[ls[i - 1]], t(1.0));
        c.connect_dff_data(&format!("l{i}"), b).unwrap();
    }
    c.set_output(ls[lfsr_bits - 1]);
    // Component 3: the critical unreachable-slack rotator.
    let rs: Vec<NetId> = (0..rotator_bits)
        .map(|i| c.add_dff(format!("r{i}"), i == 0, Time::ZERO))
        .collect();
    for i in 0..rotator_bits - 1 {
        let from = rs[(i + rotator_bits - 1) % rotator_bits];
        let b = c.add_gate(format!("rb{i}"), GateKind::Buf, &[from], d_base);
        c.connect_dff_data(&format!("r{i}"), b).unwrap();
    }
    let slow = c.add_gate("rslow", GateKind::Buf, &[rs[rotator_bits - 1]], d_long);
    let trap = c.add_gate("rtrap", GateKind::And, &[rs[0], rs[1], slow], Time::ZERO);
    let base = c.add_gate("rbase", GateKind::Buf, &[rs[rotator_bits - 2]], d_base);
    let nx = c.add_gate("rnx", GateKind::Xor, &[base, trap], Time::ZERO);
    c.connect_dff_data(&format!("r{}", rotator_bits - 1), nx)
        .unwrap();
    c.set_output(rs[rotator_bits - 1]);
    c
}

/// A shared-trunk star for the variable-delay (Section 7) engine: one
/// register, two fast direct gates, and `branches` slow gates hanging off
/// a common trunk buffer, all conjoined into the feedback.
///
/// Every branch class's register-to-register path runs through the trunk
/// pin, so with path-coupled LPs the per-class shift constraints are
/// *jointly* constrained through the shared trunk delay variable — the
/// regime where the Φ-subtree pruning walk cuts whole subtrees that the
/// flat odometer would enumerate combination by combination. The trunk
/// delay dominates each branch path (small ascending branch increments on
/// a long trunk), so each class's *independent* interval is wide — the
/// per-class closed form keeps almost every combination — while the
/// *coupled* system pins every class to nearly the same shared trunk
/// value, so shift vectors that would need incompatible trunk windows are
/// LP-infeasible. Branch delays ascend, making the coupled classes the
/// largest (and therefore the most significant digits of the walk), so
/// two incompatible branch shifts already cut at depth two, removing the
/// product of every remaining class width in one probe. Scaling
/// `branches` scales the delay-class count, and with a wide variation
/// interval the combination count grows geometrically.
///
/// # Panics
///
/// Panics if `branches == 0`.
pub fn sigma_star(branches: usize) -> Circuit {
    assert!(branches > 0, "need at least one branch");
    let mut c = Circuit::new("sigma_star");
    let f = c.add_dff("f", true, Time::ZERO);
    let u = c.add_gate("u", GateKind::Buf, &[f], t(0.4));
    let v = c.add_gate("v", GateKind::Not, &[f], t(0.7));
    let x = c.add_gate("x", GateKind::Buf, &[f], t(4.0));
    let mut pins = vec![u, v];
    for i in 0..branches {
        let kind = if i % 2 == 0 {
            GateKind::Buf
        } else {
            GateKind::Not
        };
        let b = c.add_gate(format!("b{i}"), kind, &[x], t(0.3 + 0.2 * i as f64));
        pins.push(b);
    }
    let g = c.add_gate("g", GateKind::And, &pins, Time::ZERO);
    c.connect_dff_data("f", g).unwrap();
    c.set_output(f);
    c
}

/// Extreme unreachable slack: the trap path is more than four times the
/// base delay, so the certified minimum cycle time is below a quarter of
/// the topological delay — the paper's s38584 phenomenon, where a correct
/// 2-vector bound (at best `topological/2`) would overstate the cycle time
/// by over 200%.
pub fn deep_false_path() -> Circuit {
    let mut c = unreachable_slack(4, t(2.0), t(9.0));
    c.set_name("deep_false_path");
    c
}

/// The minimal machine where intentional clock skew provably beats the
/// zero-skew minimum cycle time: a two-register ring with one slow stage
/// (`¬q0`, delay `d_slow`) and one fast stage (`q1` buffered, `d_fast`).
///
/// Zero-skew, the slow stage pins the cycle time at `d_slow`. Delaying
/// `q1`'s clock edge by `(d_slow − d_fast)/2` moves that slack to the fast
/// stage until both effective delays equal `(d_slow + d_fast)/2` — the
/// cycle-ratio optimum, since the loop's total delay is conserved under
/// any skew assignment. The provable margin is `(d_slow − d_fast)/2`.
///
/// The circuit carries *no* annotations; the skew-optimization tier must
/// discover the witness itself.
///
/// # Panics
///
/// Panics unless `d_fast < d_slow`.
pub fn skew_ring(d_slow: Time, d_fast: Time) -> Circuit {
    assert!(d_fast < d_slow, "the ring must be unbalanced");
    let mut c = Circuit::new("skew/ring");
    let q0 = c.add_dff("q0", false, Time::ZERO);
    let q1 = c.add_dff("q1", false, Time::ZERO);
    let n1 = c.add_gate("n1", GateKind::Not, &[q0], d_slow);
    let n0 = c.add_gate("n0", GateKind::Buf, &[q1], d_fast);
    c.connect_dff_data("q1", n1).unwrap();
    c.connect_dff_data("q0", n0).unwrap();
    c.set_output(q0);
    c
}

/// A twisted pipeline loop (a Johnson counter with per-stage delays):
/// stage `i` feeds register `i+1` through a buffer of delay
/// `stage_delays[i]`, with the wrap-around stage inverted so the state
/// sequence is non-trivial (period `2·stages`).
///
/// The loop conserves its total delay under skewing, so the skew-optimal
/// period is the *average* stage delay (rounded up to the milli grid)
/// while the zero-skew cycle time is pinned by the *maximum* stage delay —
/// with unbalanced stages the margin is exactly
/// `max(d_i) − ⌈mean(d_i)⌉_millis`. Equal stage delays make skew
/// provably useless (the neutral control case).
///
/// # Panics
///
/// Panics if fewer than two stage delays are given.
pub fn skew_pipeline(stage_delays: &[Time]) -> Circuit {
    assert!(stage_delays.len() >= 2, "need at least two pipeline stages");
    let stages = stage_delays.len();
    let mut c = Circuit::new("skew/pipeline");
    let qs: Vec<NetId> = (0..stages)
        .map(|i| c.add_dff(format!("q{i}"), false, Time::ZERO))
        .collect();
    for (i, &d) in stage_delays.iter().enumerate() {
        let snk = (i + 1) % stages;
        let kind = if snk == 0 {
            GateKind::Not
        } else {
            GateKind::Buf
        };
        let g = c.add_gate(format!("st{i}"), kind, &[qs[i]], d);
        c.connect_dff_data(&format!("q{snk}"), g).unwrap();
    }
    c.set_output(qs[stages - 1]);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggler_alternates() {
        let c = toggler(t(1.0));
        let s0 = c.initial_state();
        let (s1, _) = c.step(&s0, &[]);
        let (s2, _) = c.step(&s1, &[]);
        assert_ne!(s0, s1);
        assert_eq!(s0, s2);
    }

    #[test]
    fn ring_counter_rotates_one_hot() {
        let c = ring_counter(5, t(1.0));
        let mut s = c.initial_state();
        for _ in 0..5 {
            assert_eq!(s.iter().filter(|&&b| b).count(), 1, "one-hot invariant");
            (s, _) = c.step(&s, &[]);
        }
        assert_eq!(s, c.initial_state(), "period equals width");
    }

    #[test]
    fn johnson_counter_period_is_2n() {
        let c = johnson_counter(4, t(1.0));
        let mut s = c.initial_state();
        let start = s.clone();
        let mut period = 0;
        loop {
            (s, _) = c.step(&s, &[]);
            period += 1;
            if s == start || period > 20 {
                break;
            }
        }
        assert_eq!(period, 8);
    }

    #[test]
    fn lfsr_visits_many_states() {
        // x^4 + x^3 + 1 is maximal: period 15.
        let c = lfsr(4, &[2, 3], t(1.0));
        let mut s = c.initial_state();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            seen.insert(s.clone());
            (s, _) = c.step(&s, &[]);
        }
        assert_eq!(seen.len(), 15, "maximal LFSR visits 15 states");
    }

    #[test]
    fn binary_counter_counts() {
        let c = binary_counter(4, t(0.5));
        let mut s = c.initial_state();
        for expect in 1..=10u32 {
            (s, _) = c.step(&s, &[true]);
            let val: u32 = s.iter().enumerate().map(|(i, &b)| u32::from(b) << i).sum();
            assert_eq!(val, expect % 16);
        }
        // Disabled: holds.
        let before = s.clone();
        (s, _) = c.step(&s, &[false]);
        assert_eq!(s, before);
    }

    #[test]
    fn random_fsm_is_deterministic() {
        let a = random_fsm(7, 5, 2, 30);
        let b = random_fsm(7, 5, 2, 30);
        assert_eq!(a.num_gates(), b.num_gates());
        let (sa, _) = a.step(&a.initial_state(), &[true, false]);
        let (sb, _) = b.step(&b.initial_state(), &[true, false]);
        assert_eq!(sa, sb);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn periodic_slack_is_figure2_functionally() {
        // The planted product is identically 0 in operation: the machine
        // behaves as a toggler.
        let c = periodic_slack(t(1.5), t(4.0), t(5.0), 3);
        let mut s = c.initial_state();
        for _ in 0..4 {
            let q_before = s[0];
            (s, _) = c.step(&s, &[]);
            assert_eq!(s[0], !q_before, "toggler bit inverts every cycle");
        }
        assert!(c.validate().is_ok());
    }

    #[test]
    fn unreachable_slack_preserves_rotation() {
        let c = unreachable_slack(4, t(2.0), t(8.0));
        let mut s = c.initial_state();
        for _ in 0..8 {
            assert_eq!(s.iter().filter(|&&b| b).count(), 1, "one-hot preserved");
            (s, _) = c.step(&s, &[]);
        }
        assert_eq!(s, c.initial_state());
    }

    #[test]
    fn comb_false_path_dead_branch_is_dead() {
        let c = comb_false_path(t(1.0), t(6.0), 3);
        // The `dead` net must evaluate to 0 under every leaf assignment.
        let dead = c.lookup("dead").unwrap();
        let leaves: Vec<_> = c.inputs().into_iter().chain(c.dffs()).collect();
        for mask in 0..(1u32 << leaves.len()) {
            let vals = c.eval(|id| {
                leaves
                    .iter()
                    .position(|&l| l == id)
                    .map(|i| mask >> i & 1 == 1)
                    .unwrap_or(false)
            });
            assert!(!vals[dead.index()], "dead must be constant 0");
        }
    }

    #[test]
    fn deep_false_path_ratio_exceeds_four() {
        let c = deep_false_path();
        assert!(c.validate().is_ok());
        // Longest path 9.0 vs base 2.0: certified below 9/4 later by the
        // integration tests; here just check the structure.
        assert_eq!(c.num_dffs(), 4);
    }

    #[test]
    fn sigma_star_scales_delay_classes() {
        for branches in [1, 3, 5] {
            let c = sigma_star(branches);
            assert!(c.validate().is_ok());
            assert_eq!(c.num_gates(), 4 + branches);
            // The conjunction contains q ∧ ¬q, so the feedback is
            // identically 0: after one step the register sticks at 0.
            let (s1, _) = c.step(&c.initial_state(), &[]);
            let (s2, _) = c.step(&s1, &[]);
            assert_eq!(s1, vec![false]);
            assert_eq!(s2, vec![false]);
        }
    }

    #[test]
    fn composite_components_are_independent() {
        let c = composite(6, 5, 4, t(6.0), t(8.0));
        assert_eq!(c.num_dffs(), 15);
        assert!(c.validate().is_ok());
        // The rotator stays one-hot, the counter counts.
        let mut s = c.initial_state();
        for _ in 0..6 {
            (s, _) = c.step(&s, &[true]);
            let rot = &s[11..15];
            assert_eq!(rot.iter().filter(|&&b| b).count(), 1, "one-hot rotator");
        }
        let count: u32 = s[..6]
            .iter()
            .enumerate()
            .map(|(i, &b)| u32::from(b) << i)
            .sum();
        assert_eq!(count, 6);
    }

    #[test]
    fn skew_ring_is_functionally_a_twisted_pair() {
        let c = skew_ring(t(5.0), t(1.0));
        assert!(c.validate().is_ok());
        // q0,q1 walk the 4-state Johnson sequence.
        let mut s = c.initial_state();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(s.clone());
            (s, _) = c.step(&s, &[]);
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(s, c.initial_state());
    }

    #[test]
    fn skew_pipeline_period_is_2n() {
        let c = skew_pipeline(&[t(6.0), t(2.0), t(1.0)]);
        assert!(c.validate().is_ok());
        let mut s = c.initial_state();
        let start = s.clone();
        let mut period = 0;
        loop {
            (s, _) = c.step(&s, &[]);
            period += 1;
            if s == start || period > 20 {
                break;
            }
        }
        assert_eq!(period, 6, "twisted loop visits 2·stages states");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn skew_ring_rejects_balanced_delays() {
        let _ = skew_ring(t(2.0), t(2.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn periodic_slack_validates_order() {
        let _ = periodic_slack(t(4.0), t(1.5), t(5.0), 0);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn unreachable_slack_needs_three_bits() {
        let _ = unreachable_slack(2, t(1.0), t(2.0));
    }
}
