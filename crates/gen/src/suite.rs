//! The standard benchmark suite for the Table-1 regeneration harness.

use crate::families;
use crate::paper;
use mct_netlist::{Circuit, DelayModel, Time};

fn t(v: f64) -> Time {
    Time::from_f64(v)
}

/// One suite circuit plus the qualitative expectations its construction
/// plants (mirroring the paper's row markers).
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The circuit (named).
    pub circuit: Circuit,
    /// The sequential MCT bound is expected to be strictly tighter than the
    /// floating delay (the paper's `‡` rows — about 20% of its suite).
    pub expect_tighter_mct: bool,
    /// The floating delay is expected to be strictly below the topological
    /// delay (the paper's `§` rows).
    pub expect_comb_false_path: bool,
    /// Reachability analysis is affordable and should be used.
    pub use_reachability: bool,
}

impl SuiteEntry {
    fn new(circuit: Circuit) -> Self {
        SuiteEntry {
            circuit,
            expect_tighter_mct: false,
            expect_comb_false_path: false,
            use_reachability: true,
        }
    }

    fn tighter(mut self) -> Self {
        self.expect_tighter_mct = true;
        self
    }

    fn comb_false(mut self) -> Self {
        self.expect_comb_false_path = true;
        self
    }
}

fn named(mut c: Circuit, name: &str) -> Circuit {
    c.set_name(name);
    c
}

/// The standard suite: the paper's own circuits plus synthetic stand-ins
/// for the ISCAS'89 rows of its Table 1 (see `DESIGN.md` for the
/// substitution rationale). Names carry a `syn-` prefix to make the
/// provenance unmistakable; the trailing number echoes the paper row the
/// entry's *mechanism* imitates.
///
/// The mix mirrors the paper's findings: roughly a fifth of the entries
/// have a sequential bound strictly tighter than every combinational
/// delay, a few have floating below topological, one is a deep-slack
/// machine whose MCT is below a quarter of the topological delay, and the
/// rest are neutral.
pub fn standard_suite() -> Vec<SuiteEntry> {
    vec![
        // The paper's worked example and the one real ISCAS'89 circuit.
        SuiteEntry::new(paper::paper_figure2())
            .tighter()
            .comb_false(),
        SuiteEntry::new(paper::s27(&DelayModel::Mapped)),
        // Neutral machines (all delay metrics coincide) — the bulk of the
        // table, like s444/s1423/s1494/s35932.
        SuiteEntry::new(named(families::toggler(t(2.0)), "syn-s444")),
        SuiteEntry::new(named(families::ring_counter(8, t(2.2)), "syn-s1423")),
        SuiteEntry::new(named(families::johnson_counter(6, t(1.8)), "syn-s1494")),
        SuiteEntry::new(named(families::lfsr(8, &[3, 7], t(2.4)), "syn-s35932")),
        SuiteEntry::new(named(families::binary_counter(6, t(0.8)), "syn-s953n")),
        SuiteEntry::new(named(families::random_fsm(444, 6, 2, 24), "syn-s832n")),
        SuiteEntry::new(named(families::binary_counter(8, t(0.6)), "syn-s208")),
        SuiteEntry::new(named(families::lfsr(12, &[5, 11], t(2.0)), "syn-s298")),
        SuiteEntry::new(named(families::random_fsm(344, 8, 3, 40), "syn-s344")),
        SuiteEntry::new(named(families::random_fsm(386, 7, 2, 32), "syn-s386")),
        SuiteEntry::new(named(families::ring_counter(12, t(1.6)), "syn-s420")),
        SuiteEntry::new(named(families::johnson_counter(10, t(2.6)), "syn-s510")),
        SuiteEntry::new(named(families::random_fsm(1488, 5, 4, 48), "syn-s1488")),
        SuiteEntry::new(named(families::johnson_counter(12, t(2.2)), "syn-s382")),
        SuiteEntry::new(named(families::binary_counter(7, t(0.7)), "syn-s400")),
        SuiteEntry::new(named(families::lfsr(10, &[6, 9], t(1.9)), "syn-s349")),
        SuiteEntry::new(named(families::ring_counter(6, t(3.1)), "syn-s27x")),
        // ‡ rows: sequential bound strictly tighter than floating.
        SuiteEntry::new(named(
            families::periodic_slack(t(1.5), t(4.0), t(5.0), 4),
            "syn-s526",
        ))
        .tighter()
        .comb_false(),
        SuiteEntry::new(named(
            families::periodic_slack(t(2.0), t(6.0), t(7.0), 3),
            "syn-s526n",
        ))
        .tighter()
        .comb_false(),
        SuiteEntry::new(named(
            families::unreachable_slack(4, t(6.0), t(8.0)),
            "syn-s820",
        ))
        .tighter(),
        SuiteEntry::new(named(
            families::unreachable_slack(5, t(7.2), t(8.0)),
            "syn-s832",
        ))
        .tighter(),
        SuiteEntry::new(named(
            families::unreachable_slack(6, t(6.4), t(8.0)),
            "syn-s953",
        ))
        .tighter(),
        // § rows: combinationally false long paths (floating < topological).
        SuiteEntry::new(named(
            families::comb_false_path(t(3.0), t(9.0), 3),
            "syn-s641",
        ))
        .comb_false(),
        SuiteEntry::new(named(
            families::comb_false_path(t(4.0), t(6.0), 4),
            "syn-s1196",
        ))
        .comb_false(),
        SuiteEntry::new(named(
            families::comb_false_path(t(3.4), t(8.0), 5),
            "syn-s713",
        ))
        .comb_false(),
        SuiteEntry::new(named(
            families::comb_false_path(t(4.6), t(7.0), 6),
            "syn-s1238",
        ))
        .comb_false(),
        // Larger composite machines (visible CPU columns, like the paper's
        // s5378/s15850 rows).
        SuiteEntry::new(named(
            families::composite(6, 6, 5, t(6.0), t(8.0)),
            "syn-s5378x",
        ))
        .tighter(),
        SuiteEntry::new(named(
            families::composite(8, 6, 4, t(7.2), t(8.0)),
            "syn-s15850x",
        ))
        .tighter(),
        // The deep-slack row (s38584): MCT below a quarter of topological.
        SuiteEntry::new(named(families::deep_false_path(), "syn-s38584")).tighter(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_matches_paper_proportions() {
        let suite = standard_suite();
        assert!(suite.len() >= 12);
        let tighter = suite.iter().filter(|e| e.expect_tighter_mct).count();
        let frac = tighter as f64 / suite.len() as f64;
        // The paper reports ~20% of circuits with a tighter sequential
        // bound; the suite plants between 20% and 50%.
        assert!((0.2..=0.5).contains(&frac), "tighter fraction {frac}");
        assert!(suite.iter().any(|e| e.expect_comb_false_path));
    }

    #[test]
    fn all_entries_validate_and_have_unique_names() {
        let suite = standard_suite();
        let mut names = std::collections::HashSet::new();
        for entry in &suite {
            entry.circuit.validate().unwrap_or_else(|e| {
                panic!("{} invalid: {e}", entry.circuit.name());
            });
            assert!(
                names.insert(entry.circuit.name().to_owned()),
                "duplicate name {}",
                entry.circuit.name()
            );
        }
    }

    #[test]
    fn all_entries_step_deterministically() {
        for entry in standard_suite() {
            let c = &entry.circuit;
            let mut s = c.initial_state();
            for n in 0..4 {
                let ins: Vec<bool> = (0..c.num_inputs()).map(|i| (n + i) % 2 == 0).collect();
                let (next, _) = c.step(&s, &ins);
                s = next;
            }
        }
    }
}
