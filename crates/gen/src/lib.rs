//! Benchmark circuit generation.
//!
//! The paper evaluates on the ISCAS'89 benchmark suite, which is not
//! redistributable here. This crate provides the substitute documented in
//! `DESIGN.md`:
//!
//! * the paper's own worked circuits ([`paper_figure2`], [`s27`] — the one
//!   tiny public-domain ISCAS'89 netlist, transcribed);
//! * deterministic parameterized FSM families ([`families`]) that exercise
//!   the specific structural mechanisms the paper's results rest on —
//!   planted sequentially-false long paths ([`families::periodic_slack`]),
//!   combinationally false paths ([`families::comb_false_path`]),
//!   deep false paths with multi-cycle slack
//!   ([`families::deep_false_path`]), and neutral machines (counters,
//!   LFSRs, random FSMs) where every delay metric coincides;
//! * the [`standard_suite`] used by the Table-1 regeneration harness, with
//!   per-circuit expectations mirroring the paper's row markers (`‡` rows
//!   where the sequential bound is tighter, `§` rows where floating beats
//!   topological).
//!
//! # Examples
//!
//! ```
//! use mct_gen::{paper_figure2, standard_suite};
//!
//! let fig2 = paper_figure2();
//! assert_eq!(fig2.num_dffs(), 1);
//! let suite = standard_suite();
//! assert!(suite.len() >= 12);
//! assert!(suite.iter().any(|e| e.expect_tighter_mct));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
mod paper;
mod suite;

pub use paper::{paper_figure2, paper_figure2_comb_output, s27, S27_BENCH};
pub use suite::{standard_suite, SuiteEntry};
