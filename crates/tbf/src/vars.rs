//! Mapping between timed signal references and BDD variables.

use mct_bdd::Var;
use std::collections::HashMap;
use std::fmt;

/// A timed reference to a combinational leaf (flip-flop output or primary
/// input), identifying one BDD variable.
///
/// The discretized TBF `y_i(n) = f_i(…, y_j(n − m), …)` is a Boolean
/// function over *(leaf, time)* pairs; the different analyses need slightly
/// different time coordinates, which the variants capture:
///
/// * [`Shifted`](TimedVar::Shifted) — the leaf sampled `shift` clock cycles
///   before the reference cycle (the `n − m` form of the paper's Section 6);
/// * [`Absolute`](TimedVar::Absolute) — the leaf at an absolute cycle index,
///   used while unrolling from the initial state in the basis step of the
///   decision algorithm;
/// * [`Next`](TimedVar::Next) — the primed copy of a state leaf for image
///   computation in reachability analysis;
/// * [`Old`](TimedVar::Old) — the previous-vector value in transition
///   (2-vector) delay analysis;
/// * [`Arbitrary`](TimedVar::Arbitrary) — the unknown pre-vector value still
///   travelling on a path of the given delay, in floating-mode (single
///   vector) delay analysis. Two occurrences with the same `(leaf, delay)`
///   sample the same unknown waveform point and therefore share a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimedVar {
    /// Leaf value `shift` cycles before the reference cycle.
    Shifted {
        /// Dense leaf index (see [`mct_netlist::FsmView::leaves`]).
        leaf: usize,
        /// Number of clock cycles back (the paper's `m_i = ⌈k_i/τ⌉`).
        shift: i64,
    },
    /// Leaf value at an absolute cycle (basis step of the decision
    /// algorithm).
    Absolute {
        /// Dense leaf index.
        leaf: usize,
        /// Absolute cycle number.
        cycle: i64,
    },
    /// Primed (next-cycle) copy of a state leaf, for reachability images.
    Next {
        /// Dense leaf index.
        leaf: usize,
    },
    /// Previous input vector (transition-delay analysis).
    Old {
        /// Dense leaf index.
        leaf: usize,
    },
    /// Unknown value still propagating on a path of the given delay
    /// (floating-delay analysis).
    Arbitrary {
        /// Dense leaf index.
        leaf: usize,
        /// Path delay in milli-units distinguishing the sample point.
        delay: i64,
    },
    /// Primed copy of a *history slot* (leaf value `depth` cycles back) in
    /// the product-machine construction of the exact equivalence check.
    Primed {
        /// Dense leaf index.
        leaf: usize,
        /// History depth the slot holds.
        depth: i64,
    },
}

impl TimedVar {
    /// The dense leaf index this timed copy refers to. Every variant is a
    /// timed view of exactly one leaf, so the accessor is total — it is what
    /// lets group sifting treat all copies of one signal as a single block.
    pub fn leaf(&self) -> usize {
        match *self {
            TimedVar::Shifted { leaf, .. }
            | TimedVar::Absolute { leaf, .. }
            | TimedVar::Next { leaf }
            | TimedVar::Old { leaf }
            | TimedVar::Arbitrary { leaf, .. }
            | TimedVar::Primed { leaf, .. } => leaf,
        }
    }
}

impl fmt::Display for TimedVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimedVar::Shifted { leaf, shift } => write!(f, "x{leaf}(n-{shift})"),
            TimedVar::Absolute { leaf, cycle } => write!(f, "x{leaf}[{cycle}]"),
            TimedVar::Next { leaf } => write!(f, "x{leaf}'"),
            TimedVar::Old { leaf } => write!(f, "x{leaf}°"),
            TimedVar::Arbitrary { leaf, delay } => write!(f, "x{leaf}?{delay}"),
            TimedVar::Primed { leaf, depth } => write!(f, "x{leaf}'[{depth}]"),
        }
    }
}

/// Bidirectional map between [`TimedVar`]s and BDD [`Var`] indices.
///
/// Variables are allocated on first use and never freed; all analyses in one
/// session share a table (and a [`mct_bdd::BddManager`]) so that equal timed
/// references get equal BDD variables — the precondition for comparing
/// functions by canonicity.
///
/// Allocation order doubles as the initial BDD variable order (the manager
/// places new variables at the bottom of the current level permutation), so
/// [`preregister`](Self::preregister)ing a structural order into a fresh
/// table — see [`crate::StaticOrder`] — fully controls the starting levels.
///
/// # Examples
///
/// ```
/// use mct_tbf::{TimedVar, TimedVarTable};
/// let mut table = TimedVarTable::new();
/// let a = table.var(TimedVar::Shifted { leaf: 0, shift: 1 });
/// let b = table.var(TimedVar::Shifted { leaf: 0, shift: 2 });
/// assert_ne!(a, b);
/// assert_eq!(table.var(TimedVar::Shifted { leaf: 0, shift: 1 }), a);
/// assert_eq!(table.timed_var(a), Some(TimedVar::Shifted { leaf: 0, shift: 1 }));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimedVarTable {
    forward: HashMap<TimedVar, Var>,
    reverse: Vec<TimedVar>,
}

impl TimedVarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The BDD variable for `tv`, allocating a fresh index on first use.
    pub fn var(&mut self, tv: TimedVar) -> Var {
        if let Some(&v) = self.forward.get(&tv) {
            return v;
        }
        let v = Var::new(self.reverse.len() as u32);
        self.forward.insert(tv, v);
        self.reverse.push(tv);
        v
    }

    /// Registers `tvs` in sequence, allocating dense indices in exactly
    /// that order (already-registered entries keep their index). Used to
    /// pin a precomputed variable order before extraction touches the
    /// table.
    pub fn preregister<I: IntoIterator<Item = TimedVar>>(&mut self, tvs: I) {
        for tv in tvs {
            self.var(tv);
        }
    }

    /// The existing BDD variable for `tv`, if allocated.
    pub fn lookup(&self, tv: TimedVar) -> Option<Var> {
        self.forward.get(&tv).copied()
    }

    /// The timed reference behind a BDD variable.
    pub fn timed_var(&self, v: Var) -> Option<TimedVar> {
        self.reverse.get(v.index() as usize).copied()
    }

    /// Number of allocated variables.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Whether no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// All allocated `(TimedVar, Var)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (TimedVar, Var)> + '_ {
        self.reverse
            .iter()
            .enumerate()
            .map(|(i, &tv)| (tv, Var::new(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_stable() {
        let mut t = TimedVarTable::new();
        let tv1 = TimedVar::Shifted { leaf: 3, shift: 2 };
        let tv2 = TimedVar::Old { leaf: 3 };
        let v1 = t.var(tv1);
        let v2 = t.var(tv2);
        assert_ne!(v1, v2);
        assert_eq!(t.var(tv1), v1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(tv2), Some(v2));
        assert_eq!(t.lookup(TimedVar::Next { leaf: 9 }), None);
    }

    #[test]
    fn variants_are_distinct() {
        let mut t = TimedVarTable::new();
        let vars = [
            TimedVar::Shifted { leaf: 0, shift: 0 },
            TimedVar::Absolute { leaf: 0, cycle: 0 },
            TimedVar::Next { leaf: 0 },
            TimedVar::Old { leaf: 0 },
            TimedVar::Arbitrary { leaf: 0, delay: 0 },
        ];
        let ids: Vec<_> = vars.iter().map(|&tv| t.var(tv)).collect();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn reverse_lookup() {
        let mut t = TimedVarTable::new();
        let tv = TimedVar::Arbitrary {
            leaf: 7,
            delay: 4500,
        };
        let v = t.var(tv);
        assert_eq!(t.timed_var(v), Some(tv));
        assert_eq!(t.timed_var(mct_bdd::Var::new(99)), None);
    }

    #[test]
    fn iter_in_allocation_order() {
        let mut t = TimedVarTable::new();
        t.var(TimedVar::Next { leaf: 1 });
        t.var(TimedVar::Next { leaf: 0 });
        let collected: Vec<_> = t.iter().map(|(tv, _)| tv).collect();
        assert_eq!(
            collected,
            vec![TimedVar::Next { leaf: 1 }, TimedVar::Next { leaf: 0 }]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            TimedVar::Shifted { leaf: 2, shift: 3 }.to_string(),
            "x2(n-3)"
        );
        assert_eq!(TimedVar::Next { leaf: 1 }.to_string(), "x1'");
        assert_eq!(
            TimedVar::Absolute { leaf: 0, cycle: -2 }.to_string(),
            "x0[-2]"
        );
    }

    #[test]
    fn empty_table() {
        let t = TimedVarTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
