//! Moving BDDs between managers by semantic variable identity.
//!
//! A [`Bdd`](mct_bdd::Bdd) index is meaningless outside the manager that
//! built it, and two managers generally disagree on which raw variable
//! index a given [`TimedVar`] occupies (allocation is first-use order). The
//! transfer below re-expresses a function in a destination manager by
//! walking the source graph once and rebuilding bottom-up with `ite`,
//! mapping each decision variable *semantically* through the two
//! [`TimedVarTable`]s — so it is correct even when the tables disagree on
//! numbering, and linear in the source node count (memoized on source
//! nodes; `ite` re-canonicalizes under the destination order).
//!
//! The parallel sweep uses this to hand each worker the reachable-state
//! restriction computed once on the main manager, instead of having every
//! worker repeat the image fixpoint.

use crate::error::TbfError;
use crate::vars::TimedVarTable;
use mct_bdd::{Bdd, BddManager};
use std::collections::HashMap;

/// Rebuilds `f` (a function of `src`) inside `dst`, allocating destination
/// variables for the same [`TimedVar`](crate::TimedVar)s on demand.
///
/// # Errors
///
/// [`TbfError::UnmappedVariable`] if a decision variable of `f` has no
/// entry in `src_table` (i.e. `f` was not built through that table).
pub fn transfer_bdd(
    src: &BddManager,
    src_table: &TimedVarTable,
    f: Bdd,
    dst: &mut BddManager,
    dst_table: &mut TimedVarTable,
) -> Result<Bdd, TbfError> {
    // The walk runs on an explicit frame stack (source graphs can be tens
    // of thousands of levels deep). `low`/`high` resolve the handle's
    // complement bit, so the memo is keyed on full (polarity-carrying)
    // handles and complemented sub-DAGs rebuild correctly.
    enum Frame {
        Visit(Bdd),
        Emit(Bdd),
    }
    let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
    let mut frames = vec![Frame::Visit(f)];
    let mut results: Vec<Bdd> = Vec::new();
    while let Some(frame) = frames.pop() {
        match frame {
            Frame::Visit(f) => {
                if f.is_const() {
                    // FALSE and TRUE share handles in every manager.
                    results.push(f);
                    continue;
                }
                if let Some(&r) = memo.get(&f) {
                    results.push(r);
                    continue;
                }
                frames.push(Frame::Emit(f));
                frames.push(Frame::Visit(src.high(f)));
                frames.push(Frame::Visit(src.low(f)));
            }
            Frame::Emit(f) => {
                let hi = results.pop().expect("transfer high result");
                let lo = results.pop().expect("transfer low result");
                let v = src.root_var(f).expect("non-terminal has a root variable");
                let tv = src_table
                    .timed_var(v)
                    .ok_or(TbfError::UnmappedVariable { index: v.index() })?;
                let dv = dst.var(dst_table.var(tv));
                let r = dst.ite(dv, hi, lo);
                memo.insert(f, r);
                results.push(r);
            }
        }
    }
    Ok(results.pop().expect("transfer result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::TimedVar;

    fn tv(leaf: usize) -> TimedVar {
        TimedVar::Shifted { leaf, shift: 1 }
    }

    #[test]
    fn transfer_preserves_semantics_across_allocation_orders() {
        let mut src = BddManager::new();
        let mut st = TimedVarTable::new();
        let a = src.var(st.var(tv(0)));
        let b = src.var(st.var(tv(1)));
        let c = src.var(st.var(tv(2)));
        let ab = src.and(a, b);
        let f = src.or(ab, c);

        // Destination allocates the same TimedVars in the *reverse* order,
        // so raw indices disagree and ite must re-canonicalize.
        let mut dst = BddManager::new();
        let mut dt = TimedVarTable::new();
        for leaf in (0..3).rev() {
            dt.var(tv(leaf));
        }
        let g = transfer_bdd(&src, &st, f, &mut dst, &mut dt).unwrap();

        for mask in 0u32..8 {
            let sv = src.eval(f, |v| {
                let leaf = match st.timed_var(v).unwrap() {
                    TimedVar::Shifted { leaf, .. } => leaf,
                    _ => unreachable!(),
                };
                mask >> leaf & 1 == 1
            });
            let dv = dst.eval(g, |v| {
                let leaf = match dt.timed_var(v).unwrap() {
                    TimedVar::Shifted { leaf, .. } => leaf,
                    _ => unreachable!(),
                };
                mask >> leaf & 1 == 1
            });
            assert_eq!(sv, dv, "assignment {mask:03b}");
        }
    }

    #[test]
    fn constants_transfer_unchanged() {
        let src = BddManager::new();
        let st = TimedVarTable::new();
        let mut dst = BddManager::new();
        let mut dt = TimedVarTable::new();
        assert_eq!(
            transfer_bdd(&src, &st, Bdd::TRUE, &mut dst, &mut dt).unwrap(),
            Bdd::TRUE
        );
        assert_eq!(
            transfer_bdd(&src, &st, Bdd::FALSE, &mut dst, &mut dt).unwrap(),
            Bdd::FALSE
        );
    }

    #[test]
    fn unmapped_variable_is_an_error() {
        let mut src = BddManager::new();
        let st = TimedVarTable::new(); // empty: nothing mapped
        let x = src.var(mct_bdd::Var::new(0));
        let mut dst = BddManager::new();
        let mut dt = TimedVarTable::new();
        assert!(transfer_bdd(&src, &st, x, &mut dst, &mut dt).is_err());
    }
}
