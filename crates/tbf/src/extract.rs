//! Compilation of combinational cones into BDDs over timed variables.
//!
//! This is the workhorse shared by every analysis in the suite. Given a
//! sink net of the combinational network, a dynamic program walks the gate
//! DAG toward the leaves accumulating the downstream path delay; at each
//! leaf it asks a caller-supplied *leaf policy* for the BDD representing
//! "this leaf observed through a path of total delay `k`". Choosing the
//! policy instantiates the paper's different formulations:
//!
//! * period `τ`: leaf ↦ variable `(leaf, ⌈k/τ⌉)` — the discretized TBF of
//!   Section 6 (shifts `m_i = −⌊−k_i/τ⌋`);
//! * steady state: leaf ↦ variable `(leaf, 1)` — the paper's `y(n, L)`;
//! * floating mode: leaf ↦ current-vector variable if `k ≤ t`, else a fresh
//!   "arbitrary" variable per `(leaf, k)` — single-vector delay;
//! * transition mode: leaf ↦ current vector if `k ≤ t`, else the
//!   old-vector variable — 2-vector delay;
//! * untimed: leaf ↦ variable `(leaf, 0)` — the plain next-state function
//!   for reachability.
//!
//! Unequal rise/fall pin delays are handled with the paper's buffer model
//! (Figure 1b): the pin contributes the conjunction (slow rise) or
//! disjunction (slow fall) of the two shifted copies of its driver.
//!
//! The DP memoizes on `(node, accumulated downstream delay)`; the number of
//! such states equals the number of distinct partial path-delay sums, which
//! the extractor caps (configurable) to fail cleanly on pathological
//! circuits instead of exhausting memory.

use crate::error::TbfError;
use crate::vars::{TimedVar, TimedVarTable};
use mct_bdd::{Bdd, BddManager};
use mct_netlist::{FsmView, GateKind, NetId, Node, SinkKind};
use std::collections::HashMap;

/// A leaf policy: maps `(leaf index, total path delay in milli-units)` to
/// the BDD standing for that observation.
///
/// The policy **must** be a pure function of its `(leaf, delay)` arguments —
/// results are memoized per `(node, delay)` state. The total delay includes
/// the source flip-flop's clock-to-Q contribution.
pub trait LeafPolicy {
    /// Produces the BDD for leaf `leaf` observed through total path delay
    /// `delay_millis`.
    fn leaf(
        &mut self,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        leaf: usize,
        delay_millis: i64,
    ) -> Bdd;
}

impl<F> LeafPolicy for F
where
    F: FnMut(&mut BddManager, &mut TimedVarTable, usize, i64) -> Bdd,
{
    fn leaf(
        &mut self,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        leaf: usize,
        delay_millis: i64,
    ) -> Bdd {
        self(manager, table, leaf, delay_millis)
    }
}

/// One edge of a representative register-to-register path: a specific gate
/// input pin and the delay it contributed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PathEdge {
    /// The gate whose input pin was traversed.
    pub node: NetId,
    /// The input pin index.
    pub pin: usize,
    /// The pin delay used, in milli-units (rise or fall, whichever the path
    /// took).
    pub delay: i64,
}

/// A *delay class*: a distinct `(leaf, total path delay)` pair reaching any
/// analyzed sink — the paper's `k_i`. Carries one representative gate path
/// realizing the delay, for the path-coupled linear programs of Section 7.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DelayClass {
    /// Dense leaf index (flip-flop or primary input).
    pub leaf: usize,
    /// Total path delay in milli-units, including the source clock-to-Q.
    /// Under skewed extraction this is the *effective* delay
    /// `k + s_leaf − s_sink`, the argument the register model discretizes.
    pub delay: i64,
    /// The clock-skew constant folded into [`delay`](Self::delay)
    /// (`s_leaf − s_sink`), zero for unskewed analyses. Delay variation
    /// scales only the physical portion `delay − skew_offset`; when the same
    /// `(leaf, delay)` pair is reachable under several offsets the smallest
    /// is kept (widest variation interval — conservative and deterministic).
    pub skew_offset: i64,
    /// A representative path realizing the delay, sink-to-leaf order.
    pub path: Vec<PathEdge>,
}

/// Extraction engine over one [`FsmView`].
///
/// # Examples
///
/// ```
/// use mct_bdd::BddManager;
/// use mct_netlist::{Circuit, FsmView, GateKind, Time};
/// use mct_tbf::{ConeExtractor, TimedVar, TimedVarTable};
///
/// let mut c = Circuit::new("toggler");
/// let q = c.add_dff("q", false, Time::ZERO);
/// let nq = c.add_gate("nq", GateKind::Not, &[q], Time::UNIT);
/// c.connect_dff_data("q", nq).unwrap();
/// c.set_output(q);
/// let view = FsmView::new(&c).unwrap();
/// let extractor = ConeExtractor::new(&view);
/// let mut m = BddManager::new();
/// let mut table = TimedVarTable::new();
/// // Steady-state policy: every leaf becomes (leaf, shift 1).
/// let cones = extractor
///     .extract(&mut m, &mut table, &[nq], &mut |mgr: &mut BddManager,
///         tbl: &mut TimedVarTable, leaf, _delay| {
///         let v = tbl.var(TimedVar::Shifted { leaf, shift: 1 });
///         mgr.var(v)
///     })
///     .unwrap();
/// let q1 = table.lookup(TimedVar::Shifted { leaf: 0, shift: 1 }).unwrap();
/// let expected = {
///     let v = m.var(q1);
///     m.not(v)
/// };
/// assert_eq!(cones[0], expected); // next q = ¬q(n−1)
/// ```
#[derive(Clone, Debug)]
pub struct ConeExtractor<'c> {
    view: &'c FsmView<'c>,
    node_limit: usize,
}

impl<'c> ConeExtractor<'c> {
    /// Creates an extractor with the default state limit (4 million
    /// `(node, delay)` pairs).
    pub fn new(view: &'c FsmView<'c>) -> Self {
        ConeExtractor {
            view,
            node_limit: 4_000_000,
        }
    }

    /// Overrides the `(node, delay)` state limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// The view this extractor works on.
    pub fn view(&self) -> &'c FsmView<'c> {
        self.view
    }

    /// Compiles each sink's cone into a BDD under `policy`. The memo is
    /// shared across the sinks of one call (they usually overlap heavily)
    /// and discarded afterwards, so different policies can never
    /// cross-contaminate.
    ///
    /// # Errors
    ///
    /// [`TbfError::ConeExplosion`] if the number of distinct
    /// `(node, downstream-delay)` states exceeds the limit.
    pub fn extract<P: LeafPolicy + ?Sized>(
        &self,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        sinks: &[NetId],
        policy: &mut P,
    ) -> Result<Vec<Bdd>, TbfError> {
        let starts: Vec<(NetId, i64)> = sinks.iter().map(|&s| (s, 0)).collect();
        self.extract_inner(manager, table, &starts, policy, false)
    }

    /// Skew-aware variant of [`extract`](Self::extract): each sink comes
    /// with a start accumulator (normally `-s_sink`, see
    /// [`FsmView::sink_starts`]), and each leaf adds its own skew `+s_leaf`
    /// on top of the clock-to-Q, so the policy observes the *effective*
    /// path delay `k + s_leaf − s_sink` of the skewed register model. With
    /// all-zero skews this is arithmetically identical to `extract` (same
    /// memo keys, same BDDs).
    ///
    /// # Errors
    ///
    /// [`TbfError::ConeExplosion`] under the same conditions as
    /// [`extract`](Self::extract).
    pub fn extract_at<P: LeafPolicy + ?Sized>(
        &self,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        starts: &[(NetId, i64)],
        policy: &mut P,
    ) -> Result<Vec<Bdd>, TbfError> {
        self.extract_inner(manager, table, starts, policy, true)
    }

    fn extract_inner<P: LeafPolicy + ?Sized>(
        &self,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        starts: &[(NetId, i64)],
        policy: &mut P,
        skewed: bool,
    ) -> Result<Vec<Bdd>, TbfError> {
        let circuit = self.view.circuit();
        let mut memo: HashMap<(NetId, i64), Bdd> = HashMap::new();
        enum Frame {
            Enter(NetId, i64),
            Exit(NetId, i64),
        }
        let mut results = Vec::with_capacity(starts.len());
        for &(sink, start) in starts {
            let mut stack = vec![Frame::Enter(sink, start)];
            while let Some(frame) = stack.pop() {
                match frame {
                    Frame::Enter(net, acc) => {
                        if memo.contains_key(&(net, acc)) {
                            continue;
                        }
                        if memo.len() >= self.node_limit {
                            return Err(TbfError::ConeExplosion {
                                entries: memo.len(),
                            });
                        }
                        match circuit.node(net) {
                            Node::Input { .. } | Node::Dff { .. } => {
                                let leaf = self
                                    .view
                                    .leaf_index(net)
                                    .expect("inputs and dffs are leaves");
                                let mut total = acc + self.view.leaf_source_delay(leaf).millis();
                                if skewed {
                                    total += self.view.leaf_skew(leaf).millis();
                                }
                                let bdd = policy.leaf(manager, table, leaf, total);
                                memo.insert((net, acc), bdd);
                            }
                            Node::Gate {
                                inputs, pin_delays, ..
                            } => {
                                stack.push(Frame::Exit(net, acc));
                                for (inp, pd) in inputs.iter().zip(pin_delays) {
                                    stack.push(Frame::Enter(*inp, acc + pd.rise.millis()));
                                    if pd.rise != pd.fall {
                                        stack.push(Frame::Enter(*inp, acc + pd.fall.millis()));
                                    }
                                }
                            }
                        }
                    }
                    Frame::Exit(net, acc) => {
                        let (kind, pins) = match circuit.node(net) {
                            Node::Gate {
                                kind,
                                inputs,
                                pin_delays,
                                ..
                            } => {
                                let pins: Vec<Bdd> = inputs
                                    .iter()
                                    .zip(pin_delays)
                                    .map(|(inp, pd)| {
                                        let rise = memo[&(*inp, acc + pd.rise.millis())];
                                        if pd.rise == pd.fall {
                                            rise
                                        } else {
                                            let fall = memo[&(*inp, acc + pd.fall.millis())];
                                            if pd.rise > pd.fall {
                                                manager.and(rise, fall)
                                            } else {
                                                manager.or(rise, fall)
                                            }
                                        }
                                    })
                                    .collect();
                                (*kind, pins)
                            }
                            _ => unreachable!("only gates get Exit frames"),
                        };
                        let out = apply_gate(manager, kind, &pins);
                        memo.insert((net, acc), out);
                    }
                }
            }
            results.push(memo[&(sink, start)]);
        }
        Ok(results)
    }

    /// Enumerates the delay classes (distinct `(leaf, path delay)` pairs)
    /// reaching any of `sinks`, each with one representative path.
    ///
    /// # Errors
    ///
    /// [`TbfError::ConeExplosion`] under the same conditions as
    /// [`extract`](Self::extract).
    pub fn delay_classes(&self, sinks: &[NetId]) -> Result<Vec<DelayClass>, TbfError> {
        let circuit = self.view.circuit();
        // Predecessor edge of the first visit, for path reconstruction.
        let mut pred: PredMap = HashMap::new();
        let mut classes: HashMap<(usize, i64), DelayClass> = HashMap::new();
        for &sink in sinks {
            if pred.contains_key(&(sink, 0)) {
                continue;
            }
            pred.insert((sink, 0), None);
            let mut stack = vec![(sink, 0i64)];
            while let Some((net, acc)) = stack.pop() {
                if pred.len() >= self.node_limit {
                    return Err(TbfError::ConeExplosion {
                        entries: pred.len(),
                    });
                }
                match circuit.node(net) {
                    Node::Input { .. } | Node::Dff { .. } => {
                        let leaf = self
                            .view
                            .leaf_index(net)
                            .expect("inputs and dffs are leaves");
                        let total = acc + self.view.leaf_source_delay(leaf).millis();
                        classes.entry((leaf, total)).or_insert_with(|| DelayClass {
                            leaf,
                            delay: total,
                            skew_offset: 0,
                            path: reconstruct_path(&pred, (net, acc)),
                        });
                    }
                    Node::Gate {
                        inputs, pin_delays, ..
                    } => {
                        for (pin, (inp, pd)) in inputs.iter().zip(pin_delays).enumerate() {
                            let mut delays = vec![pd.rise.millis()];
                            if pd.fall != pd.rise {
                                delays.push(pd.fall.millis());
                            }
                            for d in delays {
                                let key = (*inp, acc + d);
                                if let std::collections::hash_map::Entry::Vacant(e) =
                                    pred.entry(key)
                                {
                                    e.insert(Some((
                                        (net, acc),
                                        PathEdge {
                                            node: net,
                                            pin,
                                            delay: d,
                                        },
                                    )));
                                    stack.push(key);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<DelayClass> = classes.into_values().collect();
        out.sort_by_key(|c| (c.leaf, c.delay));
        Ok(out)
    }

    /// Skew-aware variant of [`delay_classes`](Self::delay_classes): each
    /// sink comes with a start accumulator (normally `-s_sink`), leaves add
    /// their own skew, and every class records its
    /// [`skew_offset`](DelayClass::skew_offset). When no start or register
    /// skew is nonzero this delegates to the unskewed walk, so the class
    /// set, ordering, and representative paths are bit-identical to
    /// `delay_classes` on skew-free circuits.
    ///
    /// Skewed walks do not share the visited-state map across sinks (each
    /// walk's start determines the leaf offsets exactly), so representative
    /// paths come from the first start reaching each `(leaf, delay)` pair.
    ///
    /// # Errors
    ///
    /// [`TbfError::ConeExplosion`] if any single walk exceeds the state
    /// limit.
    pub fn delay_classes_at(&self, starts: &[(NetId, i64)]) -> Result<Vec<DelayClass>, TbfError> {
        if starts.iter().all(|&(_, s)| s == 0) && !self.view.has_skew() {
            let nets: Vec<NetId> = starts.iter().map(|&(n, _)| n).collect();
            return self.delay_classes(&nets);
        }
        let circuit = self.view.circuit();
        let mut classes: HashMap<(usize, i64), DelayClass> = HashMap::new();
        for &(sink, start) in starts {
            let mut pred: PredMap = HashMap::new();
            pred.insert((sink, start), None);
            let mut stack = vec![(sink, start)];
            while let Some((net, acc)) = stack.pop() {
                if pred.len() >= self.node_limit {
                    return Err(TbfError::ConeExplosion {
                        entries: pred.len(),
                    });
                }
                match circuit.node(net) {
                    Node::Input { .. } | Node::Dff { .. } => {
                        let leaf = self
                            .view
                            .leaf_index(net)
                            .expect("inputs and dffs are leaves");
                        let leaf_skew = self.view.leaf_skew(leaf).millis();
                        let total = acc + self.view.leaf_source_delay(leaf).millis() + leaf_skew;
                        let offset = start + leaf_skew;
                        match classes.entry((leaf, total)) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                let c = e.get_mut();
                                c.skew_offset = c.skew_offset.min(offset);
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(DelayClass {
                                    leaf,
                                    delay: total,
                                    skew_offset: offset,
                                    path: reconstruct_path(&pred, (net, acc)),
                                });
                            }
                        }
                    }
                    Node::Gate {
                        inputs, pin_delays, ..
                    } => {
                        for (pin, (inp, pd)) in inputs.iter().zip(pin_delays).enumerate() {
                            let mut delays = vec![pd.rise.millis()];
                            if pd.fall != pd.rise {
                                delays.push(pd.fall.millis());
                            }
                            for d in delays {
                                let key = (*inp, acc + d);
                                if let std::collections::hash_map::Entry::Vacant(e) =
                                    pred.entry(key)
                                {
                                    e.insert(Some((
                                        (net, acc),
                                        PathEdge {
                                            node: net,
                                            pin,
                                            delay: d,
                                        },
                                    )));
                                    stack.push(key);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<DelayClass> = classes.into_values().collect();
        out.sort_by_key(|c| (c.leaf, c.delay));
        Ok(out)
    }
}

/// Predecessor map of the class-enumeration DFS: each `(node, downstream
/// delay)` state remembers the first parent state and edge that reached it.
type PredMap = HashMap<(NetId, i64), Option<((NetId, i64), PathEdge)>>;

fn reconstruct_path(pred: &PredMap, mut key: (NetId, i64)) -> Vec<PathEdge> {
    let mut path = Vec::new();
    while let Some(Some((parent, edge))) = pred.get(&key) {
        path.push(*edge);
        key = *parent;
    }
    path
}

fn apply_gate(m: &mut BddManager, kind: GateKind, pins: &[Bdd]) -> Bdd {
    match kind {
        GateKind::Buf => pins[0],
        GateKind::Not => m.not(pins[0]),
        GateKind::And => m.and_all(pins.iter().copied()),
        GateKind::Nand => {
            let a = m.and_all(pins.iter().copied());
            m.not(a)
        }
        GateKind::Or => m.or_all(pins.iter().copied()),
        GateKind::Nor => {
            let o = m.or_all(pins.iter().copied());
            m.not(o)
        }
        GateKind::Xor => pins[1..].iter().fold(pins[0], |acc, &p| m.xor(acc, p)),
        GateKind::Xnor => {
            let x = pins[1..].iter().fold(pins[0], |acc, &p| m.xor(acc, p));
            m.not(x)
        }
    }
}

/// The discretized machine at one clock period (or in steady state): BDDs
/// for every next-state function and every output, over
/// [`TimedVar::Shifted`] variables.
///
/// This is the paper's normal form
/// `y_i(n) = f_i(y_1(n − m_{i1}), …, y_s(n − m_{is}))` with the shifts
/// produced by the supplied shift function (usually `m = ⌈k/τ⌉`).
#[derive(Clone, Debug)]
pub struct DiscreteMachine {
    /// Next-state functions, one per flip-flop in [`mct_netlist::Circuit::dffs`] order.
    pub next_state: Vec<Bdd>,
    /// Output functions, one per primary output.
    pub outputs: Vec<Bdd>,
    /// The largest shift referenced by any function (the paper's `m`).
    pub max_shift: i64,
}

impl DiscreteMachine {
    /// Builds the machine with an arbitrary shift function
    /// `(leaf, path-delay millis) → shift`. The delay handed to the shift
    /// function is the *effective* delay of the skewed register model,
    /// `k + s_leaf − s_sink` (identical to the raw path delay when the
    /// circuit carries no skew annotations).
    ///
    /// Shifts returned as `0` are clamped to `1`: a zero-delay
    /// register-to-register path still launches from the previous edge (the
    /// limit `k → 0⁺` of `⌈k/τ⌉`).
    ///
    /// # Errors
    ///
    /// Propagates [`TbfError::ConeExplosion`] from extraction.
    pub fn with_shift_fn<S: FnMut(usize, i64) -> i64>(
        extractor: &ConeExtractor<'_>,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        mut shift: S,
    ) -> Result<Self, TbfError> {
        let mut max_shift = 1i64;
        let view = extractor.view();
        let starts = view.sink_starts();
        let mut policy = |m: &mut BddManager, t: &mut TimedVarTable, leaf: usize, k: i64| {
            let s = shift(leaf, k).max(1);
            max_shift = max_shift.max(s);
            let v = t.var(TimedVar::Shifted { leaf, shift: s });
            m.var(v)
        };
        let cones = extractor.extract_at(manager, table, &starts, &mut policy)?;
        let mut next_state = Vec::new();
        let mut outputs = Vec::new();
        for (sink, bdd) in view.sinks().iter().zip(cones) {
            match sink.kind {
                SinkKind::NextState { .. } => next_state.push(bdd),
                SinkKind::Output { .. } => outputs.push(bdd),
            }
        }
        Ok(DiscreteMachine {
            next_state,
            outputs,
            max_shift,
        })
    }

    /// The steady-state machine `y(n, L)`: every shift is 1.
    ///
    /// # Errors
    ///
    /// Propagates [`TbfError::ConeExplosion`] from extraction.
    pub fn steady_state(
        extractor: &ConeExtractor<'_>,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
    ) -> Result<Self, TbfError> {
        Self::with_shift_fn(extractor, manager, table, |_, _| 1)
    }

    /// The untimed (functional) machine over [`TimedVar::Shifted`] shift-0
    /// variables — used for reachability analysis, where only the Boolean
    /// next-state relation matters.
    ///
    /// # Errors
    ///
    /// Propagates [`TbfError::ConeExplosion`] from extraction.
    pub fn functional(
        extractor: &ConeExtractor<'_>,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
    ) -> Result<Self, TbfError> {
        let view = extractor.view();
        let sink_nets: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
        let mut policy = |m: &mut BddManager, t: &mut TimedVarTable, leaf: usize, _k: i64| {
            let v = t.var(TimedVar::Shifted { leaf, shift: 0 });
            m.var(v)
        };
        let cones = extractor.extract(manager, table, &sink_nets, &mut policy)?;
        let mut next_state = Vec::new();
        let mut outputs = Vec::new();
        for (sink, bdd) in view.sinks().iter().zip(cones) {
            match sink.kind {
                SinkKind::NextState { .. } => next_state.push(bdd),
                SinkKind::Output { .. } => outputs.push(bdd),
            }
        }
        Ok(DiscreteMachine {
            next_state,
            outputs,
            max_shift: 0,
        })
    }
}

/// Per-sink composed-cone cache for minimal-change σ enumeration.
///
/// Adjacent shift combinations differ in only a few classes, so most sinks'
/// cones are unchanged from one combination to the next. The cache keys
/// each sink by the shift assignment *projected onto the `(leaf, delay)`
/// pairs reaching that sink*: a hit returns the previously composed BDD
/// (exact by canonicity — same projected shifts ⇒ same function ⇒ same
/// handle), and only the sinks whose projection changed are re-extracted,
/// in one batched [`ConeExtractor::extract`] call that preserves the
/// cross-sink memo.
///
/// Cached roots are pinned with [`BddManager::protect`] so they survive
/// garbage collection and dynamic reordering; [`release`](Self::release)
/// unpins everything. Callers release at candidate boundaries, so the
/// arena stays bounded by the existing per-candidate collections.
pub struct SigmaConeCache {
    /// Per sink (in `view.sinks()` order): the distinct `(leaf, delay)`
    /// pairs reaching it — the projection-key layout.
    sink_pairs: Vec<Vec<(usize, i64)>>,
    /// `(sink position, projected shifts)` → pinned composed cone.
    entries: HashMap<(usize, Vec<i64>), Bdd>,
    hits: u64,
    cap: usize,
}

impl SigmaConeCache {
    /// Builds the per-sink projection layout for `extractor`'s view.
    ///
    /// # Errors
    ///
    /// [`TbfError::ConeExplosion`] from the per-sink class walks (only
    /// reachable if the whole-view walk would also explode).
    pub fn new(extractor: &ConeExtractor<'_>) -> Result<Self, TbfError> {
        let view = extractor.view();
        let starts = view.sink_starts();
        let mut sink_pairs = Vec::with_capacity(view.sinks().len());
        for &start in &starts {
            let classes = extractor.delay_classes_at(&[start])?;
            sink_pairs.push(classes.into_iter().map(|c| (c.leaf, c.delay)).collect());
        }
        Ok(SigmaConeCache {
            sink_pairs,
            entries: HashMap::new(),
            hits: 0,
            cap: 4096,
        })
    }

    /// Drains the sink-level hit counter.
    pub fn take_hits(&mut self) -> u64 {
        std::mem::take(&mut self.hits)
    }

    /// Number of cached cones currently pinned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently pins nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Unpins and forgets every cached cone (the pinned nodes become
    /// reclaimable at the next collection).
    pub fn release(&mut self, manager: &mut BddManager) {
        for (_, bdd) in self.entries.drain() {
            manager.unprotect(bdd);
        }
    }

    /// Builds the discretized machine for `shift`, reusing every sink whose
    /// projected shifts are already cached. The result is bit-for-bit the
    /// machine [`DiscreteMachine::with_shift_fn`] builds under the same
    /// policy: per-sink functions are canonical handles, and the max-shift
    /// accounting runs over the same `(leaf, delay)` pair set whether a
    /// sink is re-extracted or reused.
    ///
    /// # Errors
    ///
    /// Propagates [`TbfError::ConeExplosion`] from extraction.
    pub fn machine<S: FnMut(usize, i64) -> i64>(
        &mut self,
        extractor: &ConeExtractor<'_>,
        manager: &mut BddManager,
        table: &mut TimedVarTable,
        mut shift: S,
    ) -> Result<DiscreteMachine, TbfError> {
        let view = extractor.view();
        if self.entries.len() > self.cap {
            // Evict up front, never between the lookups and the inserts —
            // hit handles stay pinned for the whole assembly below.
            self.release(manager);
        }
        let mut max_shift = 1i64;
        let mut keys: Vec<Vec<i64>> = Vec::with_capacity(self.sink_pairs.len());
        for pairs in &self.sink_pairs {
            let mut key = Vec::with_capacity(pairs.len());
            for &(leaf, k) in pairs {
                let s = shift(leaf, k).max(1);
                max_shift = max_shift.max(s);
                key.push(s);
            }
            keys.push(key);
        }
        let starts = view.sink_starts();
        let mut slots: Vec<Option<Bdd>> = Vec::with_capacity(keys.len());
        let mut miss_starts = Vec::new();
        let mut miss_pos = Vec::new();
        for (pos, key) in keys.iter().enumerate() {
            match self.entries.get(&(pos, key.clone())).copied() {
                Some(b) => {
                    self.hits += 1;
                    slots.push(Some(b));
                }
                None => {
                    miss_starts.push(starts[pos]);
                    miss_pos.push(pos);
                    slots.push(None);
                }
            }
        }
        if !miss_starts.is_empty() {
            let mut policy = |m: &mut BddManager, t: &mut TimedVarTable, leaf: usize, k: i64| {
                let s = shift(leaf, k).max(1);
                let v = t.var(TimedVar::Shifted { leaf, shift: s });
                m.var(v)
            };
            let cones = extractor.extract_at(manager, table, &miss_starts, &mut policy)?;
            for (&pos, bdd) in miss_pos.iter().zip(cones) {
                manager.protect(bdd);
                self.entries.insert((pos, keys[pos].clone()), bdd);
                slots[pos] = Some(bdd);
            }
        }
        let mut next_state = Vec::new();
        let mut outputs = Vec::new();
        for (sink, slot) in view.sinks().iter().zip(slots) {
            let bdd = slot.expect("every sink resolved above");
            match sink.kind {
                SinkKind::NextState { .. } => next_state.push(bdd),
                SinkKind::Output { .. } => outputs.push(bdd),
            }
        }
        Ok(DiscreteMachine {
            next_state,
            outputs,
            max_shift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_netlist::{Circuit, PinDelay, Time};

    fn t(v: f64) -> Time {
        Time::from_f64(v)
    }

    /// The paper's Figure-2 circuit (one flip-flop `f`, output `g`).
    fn figure2() -> Circuit {
        let mut c = Circuit::new("fig2");
        let f = c.add_dff("f", true, Time::ZERO);
        let cb = c.add_gate("c", GateKind::Buf, &[f], t(1.5));
        let d = c.add_gate("d", GateKind::Not, &[f], t(4.0));
        let e = c.add_gate("e", GateKind::Buf, &[f], t(5.0));
        let a = c.add_gate("a", GateKind::And, &[cb, d, e], Time::ZERO);
        let b = c.add_gate("b", GateKind::Not, &[f], t(2.0));
        let g = c.add_gate("g", GateKind::Or, &[a, b], Time::ZERO);
        c.connect_dff_data("f", g).unwrap();
        c.set_output(f);
        c
    }

    fn shifted(m: &mut BddManager, tbl: &mut TimedVarTable, leaf: usize, s: i64) -> Bdd {
        let v = tbl.var(TimedVar::Shifted { leaf, shift: s });
        m.var(v)
    }

    #[test]
    fn figure2_steady_state_is_inverter() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let machine = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        // g(n, L) = x(n−1)·x̄(n−1)·x(n−1) + x̄(n−1) = x̄(n−1).
        let x1 = shifted(&mut m, &mut tbl, 0, 1);
        let expect = m.not(x1);
        assert_eq!(machine.next_state[0], expect);
        assert_eq!(machine.max_shift, 1);
    }

    #[test]
    fn figure2_at_tau_2_5_matches_paper() {
        // Shifts at τ = 2.5: 1.5→1, 4→2, 5→2, 2→1, so
        // g(n) = x(n−1)·x̄(n−2)·x(n−2) + x̄(n−1) = x̄(n−1) (the middle term
        // vanishes). The paper finds τ = 2.5 valid.
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let shifts = |_: usize, k: i64| match k {
            0 | 1500 | 2000 => 1, // 0 is the output cone reading f directly
            4000 | 5000 => 2,
            other => panic!("unexpected path delay {other}"),
        };
        let machine = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, shifts).unwrap();
        let x1 = shifted(&mut m, &mut tbl, 0, 1);
        let expect = m.not(x1);
        assert_eq!(machine.next_state[0], expect);
        assert_eq!(machine.max_shift, 2);
    }

    #[test]
    fn figure2_at_tau_2_has_long_shift() {
        // Shifts at τ = 2: 1.5→1, 4→2, 5→3, 2→1:
        // g(n) = x(n−1)·x̄(n−2)·x(n−3) + x̄(n−1), which does NOT collapse.
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let shifts = |_: usize, k: i64| (k + 1999) / 2000; // ⌈k/2⌉ in millis
        let machine = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, shifts).unwrap();
        let x1 = shifted(&mut m, &mut tbl, 0, 1);
        let x2 = shifted(&mut m, &mut tbl, 0, 2);
        let x3 = shifted(&mut m, &mut tbl, 0, 3);
        let expect = {
            let nx2 = m.not(x2);
            let t1 = m.and_all([x1, nx2, x3]);
            let nx1 = m.not(x1);
            m.or(t1, nx1)
        };
        assert_eq!(machine.next_state[0], expect);
        assert_eq!(machine.max_shift, 3);
    }

    #[test]
    fn cone_cache_matches_with_shift_fn_and_counts_hits() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let tau_2_5 = |_: usize, k: i64| match k {
            0 | 1500 | 2000 => 1,
            4000 | 5000 => 2,
            other => panic!("unexpected path delay {other}"),
        };
        let tau_2 = |_: usize, k: i64| (k + 1999) / 2000;
        let direct_2_5 = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, tau_2_5).unwrap();
        let direct_2 = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, tau_2).unwrap();

        let mut cache = SigmaConeCache::new(&ex).unwrap();
        let via_cache_2 = cache.machine(&ex, &mut m, &mut tbl, tau_2).unwrap();
        assert_eq!(via_cache_2.next_state, direct_2.next_state);
        assert_eq!(via_cache_2.outputs, direct_2.outputs);
        assert_eq!(via_cache_2.max_shift, direct_2.max_shift);
        assert_eq!(cache.take_hits(), 0);

        let via_cache_2_5 = cache.machine(&ex, &mut m, &mut tbl, tau_2_5).unwrap();
        assert_eq!(via_cache_2_5.next_state, direct_2_5.next_state);
        assert_eq!(via_cache_2_5.outputs, direct_2_5.outputs);
        assert_eq!(via_cache_2_5.max_shift, direct_2_5.max_shift);
        // The output cone reads f through delay 0 → shift 1 under both
        // assignments, so that sink is reused.
        assert_eq!(cache.take_hits(), 1);

        // Repeat assignments hit on every sink.
        let again = cache.machine(&ex, &mut m, &mut tbl, tau_2).unwrap();
        assert_eq!(again.next_state, direct_2.next_state);
        assert_eq!(again.max_shift, direct_2.max_shift);
        assert_eq!(cache.take_hits() as usize, view.sinks().len());

        assert!(!cache.is_empty());
        cache.release(&mut m);
        assert!(cache.is_empty());
    }

    #[test]
    fn cone_cache_entries_survive_collection() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let tau_2 = |_: usize, k: i64| (k + 1999) / 2000;
        let mut cache = SigmaConeCache::new(&ex).unwrap();
        let first = cache.machine(&ex, &mut m, &mut tbl, tau_2).unwrap();
        // Collect with no external roots: only the cache pins keep the
        // cones alive.
        m.maybe_collect_garbage(&[]);
        m.collect_garbage(&[]);
        let second = cache.machine(&ex, &mut m, &mut tbl, tau_2).unwrap();
        assert_eq!(second.next_state, first.next_state);
        assert_eq!(second.outputs, first.outputs);
        assert_eq!(cache.take_hits() as usize, view.sinks().len());
        cache.release(&mut m);
    }

    #[test]
    fn delay_classes_of_figure2() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let sinks: Vec<NetId> = view.next_state_sinks().map(|s| s.net).collect();
        let classes = ex.delay_classes(&sinks).unwrap();
        let delays: Vec<i64> = classes.iter().map(|c| c.delay).collect();
        assert_eq!(delays, vec![1500, 2000, 4000, 5000]);
        // Representative paths: the 5000 class goes through e then a then g.
        let five = classes.iter().find(|c| c.delay == 5000).unwrap();
        let total: i64 = five.path.iter().map(|e| e.delay).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    fn output_cone_extracted() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let machine = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        // Output is the flip-flop itself: leaf 0 at shift 1.
        assert_eq!(machine.outputs.len(), 1);
        let x1 = shifted(&mut m, &mut tbl, 0, 1);
        assert_eq!(machine.outputs[0], x1);
    }

    #[test]
    fn rise_fall_pin_becomes_two_shifts() {
        // A single buffer with rise 2 / fall 1 between two FFs:
        // next = x(k=2000) ∧ x(k=1000) under a policy that records ks.
        let mut c = Circuit::new("rf");
        let q = c.add_dff("q", false, Time::ZERO);
        let b = c.add_gate_with_delays(
            "b",
            GateKind::Buf,
            &[q],
            vec![PinDelay::new(t(2.0), t(1.0))],
        );
        c.connect_dff_data("q", b).unwrap();
        c.set_output(b);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let mut seen = Vec::new();
        let mut policy = |mm: &mut BddManager, tt: &mut TimedVarTable, leaf: usize, k: i64| {
            seen.push(k);
            let v = tt.var(TimedVar::Arbitrary { leaf, delay: k });
            mm.var(v)
        };
        let sinks: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
        let cones = ex.extract(&mut m, &mut tbl, &sinks, &mut policy).unwrap();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![1000, 2000]);
        // Slow rise → conjunction of the two observations.
        let a = m.var(
            tbl.lookup(TimedVar::Arbitrary {
                leaf: 0,
                delay: 2000,
            })
            .unwrap(),
        );
        let b2 = m.var(
            tbl.lookup(TimedVar::Arbitrary {
                leaf: 0,
                delay: 1000,
            })
            .unwrap(),
        );
        let expect = m.and(a, b2);
        assert_eq!(cones[0], expect);
    }

    #[test]
    fn clock_to_q_added_at_leaf() {
        let mut c = Circuit::new("c2q");
        let q = c.add_dff("q", false, t(0.5));
        let g = c.add_gate("g", GateKind::Not, &[q], t(1.0));
        c.connect_dff_data("q", g).unwrap();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let classes = ex
            .delay_classes(&view.sinks().iter().map(|s| s.net).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].delay, 1500); // 1.0 pin + 0.5 clock-to-Q
    }

    /// Two-register ring: q0 −(NOT, 5)→ q1 −(BUF, 1)→ q0, output = q0,
    /// with q1 skewed +2.0. Both register-to-register paths land on an
    /// effective delay of 3.0 (5 − 2 and 1 + 2).
    fn skewed_ring() -> Circuit {
        let mut c = Circuit::new("skew_ring");
        let q0 = c.add_dff("q0", false, Time::ZERO);
        let q1 = c.add_dff("q1", false, Time::ZERO);
        let n1 = c.add_gate("n1", GateKind::Not, &[q0], t(5.0));
        let n0 = c.add_gate("n0", GateKind::Buf, &[q1], t(1.0));
        c.connect_dff_data("q1", n1).unwrap();
        c.connect_dff_data("q0", n0).unwrap();
        c.set_output(q0);
        let q1_id = c.lookup("q1").unwrap();
        c.set_dff_skew(q1_id, t(2.0)).unwrap();
        c
    }

    #[test]
    fn skewed_classes_carry_offsets() {
        let c = skewed_ring();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let classes = ex.delay_classes_at(&view.sink_starts()).unwrap();
        let summary: Vec<(usize, i64, i64)> = classes
            .iter()
            .map(|c| (c.leaf, c.delay, c.skew_offset))
            .collect();
        // Output cone reads q0 directly (raw 0, no skew); both feedback
        // paths become effective delay 3000 with opposite offsets.
        assert_eq!(summary, vec![(0, 0, 0), (0, 3000, -2000), (1, 3000, 2000)]);
        // Raw (unskewed) enumeration still sees 5000 and 1000.
        let sinks: Vec<NetId> = view.next_state_sinks().map(|s| s.net).collect();
        let raw = ex.delay_classes(&sinks).unwrap();
        let raw_delays: Vec<i64> = raw.iter().map(|c| c.delay).collect();
        assert_eq!(raw_delays, vec![5000, 1000]);
        assert!(raw.iter().all(|c| c.skew_offset == 0));
    }

    #[test]
    fn skewed_machine_uses_effective_delays() {
        let c = skewed_ring();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let mut seen = Vec::new();
        let machine = DiscreteMachine::with_shift_fn(&ex, &mut m, &mut tbl, |_, k| {
            seen.push(k);
            1
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 3000, 3000]);
        // At shift 1 everywhere the machine is the steady-state one.
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        assert_eq!(machine.next_state, steady.next_state);
        assert_eq!(machine.outputs, steady.outputs);
    }

    #[test]
    fn zero_skew_classes_at_matches_raw() {
        let c = figure2();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let nets: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
        let raw = ex.delay_classes(&nets).unwrap();
        let at = ex.delay_classes_at(&view.sink_starts()).unwrap();
        assert_eq!(raw, at);
    }

    #[test]
    fn node_limit_enforced() {
        // A ladder of 2-input gates with distinct pin delays produces
        // exponentially many distinct path sums.
        let mut c = Circuit::new("explode");
        let q = c.add_dff("q", false, Time::ZERO);
        let mut cur = q;
        for i in 0..24 {
            let d1 = Time::from_millis(1 << i);
            let d2 = Time::from_millis(2 << i);
            cur = c.add_gate_with_delays(
                format!("g{i}"),
                GateKind::And,
                &[cur, cur],
                vec![PinDelay::symmetric(d1), PinDelay::symmetric(d2)],
            );
        }
        c.connect_dff_data("q", cur).unwrap();
        c.set_output(cur);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view).with_node_limit(10_000);
        let sinks: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let mut policy = |mm: &mut BddManager, tt: &mut TimedVarTable, leaf: usize, k: i64| {
            let v = tt.var(TimedVar::Arbitrary { leaf, delay: k });
            mm.var(v)
        };
        let err = ex.extract(&mut m, &mut tbl, &sinks, &mut policy);
        assert!(matches!(err, Err(TbfError::ConeExplosion { .. })));
    }

    #[test]
    fn functional_machine_matches_step() {
        // The functional BDDs agree with Circuit::step on all leaf values.
        let src = "
            INPUT(a)
            OUTPUT(o)
            q0 = DFF(n0)
            q1 = DFF(n1)
            n0 = XOR(q0, a)
            n1 = NAND(q0, q1)
            o = OR(n1, a)
        ";
        let c = mct_netlist::parse_bench(src, &mct_netlist::DelayModel::Unit).unwrap();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let machine = DiscreteMachine::functional(&ex, &mut m, &mut tbl).unwrap();
        let nleaves = view.leaves().len();
        for mask in 0..(1u32 << nleaves) {
            let leaf_val = |i: usize| mask >> i & 1 == 1;
            let state: Vec<bool> = (0..view.num_state_bits()).map(leaf_val).collect();
            let inputs: Vec<bool> = (view.num_state_bits()..nleaves).map(leaf_val).collect();
            let (next, outs) = c.step(&state, &inputs);
            let assignment = |v: mct_bdd::Var| match tbl.timed_var(v) {
                Some(TimedVar::Shifted { leaf, shift: 0 }) => leaf_val(leaf),
                other => panic!("unexpected var {other:?}"),
            };
            for (j, &bdd) in machine.next_state.iter().enumerate() {
                assert_eq!(m.eval(bdd, assignment), next[j], "state {j} mask {mask:b}");
            }
            for (j, &bdd) in machine.outputs.iter().enumerate() {
                assert_eq!(m.eval(bdd, assignment), outs[j], "output {j} mask {mask:b}");
            }
        }
    }
}
