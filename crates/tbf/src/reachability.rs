//! Symbolic reachability over the functional machine.
//!
//! The paper lists the reachable state space, initial states, and
//! unrealizable transitions among the sequential don't-cares that
//! combinational delay metrics ignore. This module computes the reachable
//! set `R` of a circuit by the standard BDD least-fixpoint image iteration;
//! analyses then restrict their equality checks to `R`.

use crate::error::TbfError;
use crate::extract::{ConeExtractor, DiscreteMachine};
use crate::vars::{TimedVar, TimedVarTable};
use mct_bdd::{Bdd, BddManager, Var, VarSet};

/// The set of states reachable from the circuit's initial state, as a BDD
/// over the current-state variables `TimedVar::Shifted { leaf, shift: 0 }`.
///
/// Uses monolithic-transition-relation image computation — adequate for the
/// state-bit counts in this suite (tens of bits). Returns the constant-true
/// BDD for a machine with no flip-flops.
///
/// # Errors
///
/// Propagates [`TbfError::ConeExplosion`] from cone extraction.
///
/// # Examples
///
/// ```
/// use mct_bdd::BddManager;
/// use mct_netlist::{Circuit, FsmView, GateKind, Time};
/// use mct_tbf::{reachable_states, ConeExtractor, TimedVarTable};
///
/// // A 2-bit one-hot-ish machine: q1' = q0, q0' = ¬q1; from state 00 it
/// // cycles 00 → 10 → 11 → 01 → 00: all four states reachable.
/// let mut c = Circuit::new("cycle");
/// let q0 = c.add_dff("q0", false, Time::ZERO);
/// let q1 = c.add_dff("q1", false, Time::ZERO);
/// let n0 = c.add_gate("n0", GateKind::Not, &[q1], Time::UNIT);
/// let b1 = c.add_gate("b1", GateKind::Buf, &[q0], Time::UNIT);
/// c.connect_dff_data("q0", n0).unwrap();
/// c.connect_dff_data("q1", b1).unwrap();
/// c.set_output(q0);
/// let view = FsmView::new(&c).unwrap();
/// let ex = ConeExtractor::new(&view);
/// let mut m = BddManager::new();
/// let mut tbl = TimedVarTable::new();
/// let r = reachable_states(&ex, &mut m, &mut tbl).unwrap();
/// assert!(r.is_true());
/// ```
pub fn reachable_states(
    extractor: &ConeExtractor<'_>,
    manager: &mut BddManager,
    table: &mut TimedVarTable,
) -> Result<Bdd, TbfError> {
    let view = extractor.view();
    let num_state = view.num_state_bits();
    if num_state == 0 {
        return Ok(manager.one());
    }
    let machine = DiscreteMachine::functional(extractor, manager, table)?;

    let cur_vars: Vec<Var> = (0..num_state)
        .map(|leaf| table.var(TimedVar::Shifted { leaf, shift: 0 }))
        .collect();
    let next_vars: Vec<Var> = (0..num_state)
        .map(|leaf| table.var(TimedVar::Next { leaf }))
        .collect();
    let input_vars: Vec<Var> = (num_state..view.leaves().len())
        .map(|leaf| table.var(TimedVar::Shifted { leaf, shift: 0 }))
        .collect();

    // Monolithic transition relation T(S, U, S') = ∧_j (S'_j ↔ f_j(S, U)).
    let mut trans = manager.one();
    for (j, &f) in machine.next_state.iter().enumerate() {
        let nv = manager.var(next_vars[j]);
        let bit = manager.xnor(nv, f);
        trans = manager.and(trans, bit);
    }

    // Initial state cube.
    let init_vals = view.circuit().initial_state();
    let mut reached = manager.one();
    for (j, &v) in init_vals.iter().enumerate() {
        let lit = manager.literal(cur_vars[j], v);
        reached = manager.and(reached, lit);
    }

    // Quantify current state and inputs during the image. Prepared once:
    // the fixpoint below quantifies the same variables every iteration.
    let quantified: VarSet = cur_vars.iter().chain(input_vars.iter()).copied().collect();
    let rename_map: Vec<(Var, Var)> = next_vars
        .iter()
        .zip(&cur_vars)
        .map(|(&n, &c)| (n, c))
        .collect();

    loop {
        let img_next = manager.and_exists_set(reached, trans, &quantified);
        let img = manager.rename_vars(img_next, &rename_map);
        let new_reached = manager.or(reached, img);
        if new_reached == reached {
            return Ok(reached);
        }
        reached = new_reached;
        // Iterations discard whole intermediate images; let the collector
        // reclaim them once the arena passes its trigger. The machine's
        // next-state functions are embedded in `trans`' construction but no
        // longer needed, so only the relation and frontier are rooted.
        manager.maybe_collect_garbage(&[trans, reached]);
    }
}

/// Counts the states in a reachable-set BDD over `num_state` state bits.
pub fn count_states(manager: &BddManager, reached: Bdd, num_state: usize) -> f64 {
    // `sat_fraction_of` is the exact fraction of the assignment space
    // independent of which variables appear, so scaling by 2^bits counts
    // states as long as the set's support is within the state bits (true
    // for the output of `reachable_states`).
    manager.sat_fraction_of(reached) * 2f64.powi(num_state as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_netlist::{Circuit, FsmView, GateKind, Time};

    /// A 3-bit one-hot ring counter starting at 100: only 3 of 8 states are
    /// reachable.
    fn ring3() -> Circuit {
        let mut c = Circuit::new("ring3");
        let q0 = c.add_dff("q0", true, Time::ZERO);
        let q1 = c.add_dff("q1", false, Time::ZERO);
        let q2 = c.add_dff("q2", false, Time::ZERO);
        let b0 = c.add_gate("b0", GateKind::Buf, &[q2], Time::UNIT);
        let b1 = c.add_gate("b1", GateKind::Buf, &[q0], Time::UNIT);
        let b2 = c.add_gate("b2", GateKind::Buf, &[q1], Time::UNIT);
        c.connect_dff_data("q0", b0).unwrap();
        c.connect_dff_data("q1", b1).unwrap();
        c.connect_dff_data("q2", b2).unwrap();
        c.set_output(q2);
        c
    }

    #[test]
    fn ring_counter_reaches_three_states() {
        let c = ring3();
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let r = reachable_states(&ex, &mut m, &mut tbl).unwrap();
        assert!(!r.is_true());
        assert_eq!(count_states(&m, r, 3) as u64, 3);
        // The initial state 100 is in R; the dead state 000 is not.
        let in_set = |bits: [bool; 3]| {
            m.eval(r, |v: Var| match tbl.timed_var(v) {
                Some(TimedVar::Shifted { leaf, shift: 0 }) => bits[leaf],
                _ => false,
            })
        };
        assert!(in_set([true, false, false]));
        assert!(!in_set([false, false, false]));
        assert!(!in_set([true, true, false]));
    }

    #[test]
    fn toggler_reaches_both_states() {
        let mut c = Circuit::new("t");
        let q = c.add_dff("q", false, Time::ZERO);
        let nq = c.add_gate("nq", GateKind::Not, &[q], Time::UNIT);
        c.connect_dff_data("q", nq).unwrap();
        c.set_output(q);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let r = reachable_states(&ex, &mut m, &mut tbl).unwrap();
        assert!(r.is_true());
    }

    #[test]
    fn stuck_machine_reaches_closure_of_init() {
        // q' = q: only the initial state is reachable.
        let mut c = Circuit::new("stuck");
        let q = c.add_dff("q", true, Time::ZERO);
        let b = c.add_gate("b", GateKind::Buf, &[q], Time::UNIT);
        c.connect_dff_data("q", b).unwrap();
        c.set_output(q);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let r = reachable_states(&ex, &mut m, &mut tbl).unwrap();
        assert_eq!(count_states(&m, r, 1) as u64, 1);
    }

    #[test]
    fn input_driven_machine() {
        // q' = q XOR a: both states reachable thanks to the free input.
        let mut c = Circuit::new("xorin");
        let a = c.add_input("a");
        let q = c.add_dff("q", false, Time::ZERO);
        let nx = c.add_gate("nx", GateKind::Xor, &[q, a], Time::UNIT);
        c.connect_dff_data("q", nx).unwrap();
        c.set_output(q);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let r = reachable_states(&ex, &mut m, &mut tbl).unwrap();
        assert!(r.is_true());
    }

    #[test]
    fn no_state_machine_is_trivially_true() {
        let mut c = Circuit::new("compute");
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::Not, &[a], Time::UNIT);
        c.set_output(g);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let r = reachable_states(&ex, &mut m, &mut tbl).unwrap();
        assert!(r.is_true());
    }
}
