//! Piecewise-constant binary waveforms: the signal space `B(t)` of the
//! paper's Definition 1.

use mct_netlist::Time;

/// A mapping `ℝ → {0, 1}` that is piecewise constant with finitely many
/// transitions — the binary signal space over which TBFs are evaluated.
///
/// The waveform holds `initial` before its first transition; each transition
/// toggles the value, and the new value holds *from* the transition instant
/// (left-closed convention, matching an ideal zero-width edge at that time).
///
/// # Examples
///
/// ```
/// use mct_netlist::Time;
/// use mct_tbf::Waveform;
///
/// let w = Waveform::step(false, Time::from_f64(2.0), true);
/// assert!(!w.value_at(Time::from_f64(1.999)));
/// assert!(w.value_at(Time::from_f64(2.0)));
/// assert_eq!(w.num_transitions(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Waveform {
    initial: bool,
    /// Strictly increasing toggle instants.
    transitions: Vec<Time>,
}

impl Waveform {
    /// The waveform constantly equal to `value`.
    pub fn constant(value: bool) -> Self {
        Waveform {
            initial: value,
            transitions: Vec::new(),
        }
    }

    /// A single step: `initial` before `at`, `after` from `at` on.
    /// If `after == initial` the waveform is constant.
    pub fn step(initial: bool, at: Time, after: bool) -> Self {
        if initial == after {
            Waveform::constant(initial)
        } else {
            Waveform {
                initial,
                transitions: vec![at],
            }
        }
    }

    /// Builds a waveform from sample points `(time, value)`; consecutive
    /// equal values are merged. Samples must be sorted by strictly
    /// increasing time.
    ///
    /// # Panics
    ///
    /// Panics if sample times are not strictly increasing.
    pub fn from_steps(initial: bool, steps: &[(Time, bool)]) -> Self {
        let mut transitions = Vec::new();
        let mut cur = initial;
        let mut last_time: Option<Time> = None;
        for &(t, v) in steps {
            if let Some(prev) = last_time {
                assert!(t > prev, "sample times must be strictly increasing");
            }
            last_time = Some(t);
            if v != cur {
                transitions.push(t);
                cur = v;
            }
        }
        Waveform {
            initial,
            transitions,
        }
    }

    /// A clock-like waveform: samples `values[n]` held on `[n·period,
    /// (n+1)·period)`, with `initial` before time zero.
    pub fn from_cycles(initial: bool, period: Time, values: &[bool]) -> Self {
        let steps: Vec<(Time, bool)> = values
            .iter()
            .enumerate()
            .map(|(n, &v)| (period * n as i64, v))
            .collect();
        Waveform::from_steps(initial, &steps)
    }

    /// The value at time `t`.
    pub fn value_at(&self, t: Time) -> bool {
        let flips = self.transitions.partition_point(|&tt| tt <= t);
        self.initial ^ (flips % 2 == 1)
    }

    /// The value before every transition.
    pub fn initial_value(&self) -> bool {
        self.initial
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The last transition instant, or `None` for a constant waveform.
    pub fn last_transition(&self) -> Option<Time> {
        self.transitions.last().copied()
    }

    /// The final (steady-state) value after all transitions.
    pub fn final_value(&self) -> bool {
        self.initial ^ (self.transitions.len() % 2 == 1)
    }

    /// Whether the two waveforms agree at every instant in `[from, to]`
    /// (inclusive; transitions are compared exactly).
    pub fn agrees_with(&self, other: &Waveform, from: Time, to: Time) -> bool {
        let mut probes: Vec<Time> = vec![from, to];
        for &t in self.transitions.iter().chain(&other.transitions) {
            if t >= from && t <= to {
                probes.push(t);
                // Also probe just before the transition.
                probes.push(t - Time::from_millis(1));
            }
        }
        probes
            .into_iter()
            .filter(|&t| t >= from && t <= to)
            .all(|t| self.value_at(t) == other.value_at(t))
    }

    /// Toggles the waveform at `t` (appends a transition).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not later than the last transition.
    pub fn push_toggle(&mut self, t: Time) {
        if let Some(&last) = self.transitions.last() {
            assert!(t > last, "transitions must be strictly increasing");
        }
        self.transitions.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Time {
        Time::from_f64(v)
    }

    #[test]
    fn constant_is_constant() {
        let w = Waveform::constant(true);
        for v in [-100.0, 0.0, 55.5] {
            assert!(w.value_at(t(v)));
        }
        assert_eq!(w.num_transitions(), 0);
        assert!(w.final_value());
        assert_eq!(w.last_transition(), None);
    }

    #[test]
    fn step_semantics_left_closed() {
        let w = Waveform::step(false, t(1.0), true);
        assert!(!w.value_at(t(0.999)));
        assert!(w.value_at(t(1.0)));
        assert!(w.value_at(t(2.0)));
        assert!(!w.initial_value());
        assert!(w.final_value());
    }

    #[test]
    fn degenerate_step_is_constant() {
        let w = Waveform::step(true, t(5.0), true);
        assert_eq!(w.num_transitions(), 0);
    }

    #[test]
    fn from_steps_merges_duplicates() {
        let w = Waveform::from_steps(false, &[(t(1.0), true), (t(2.0), true), (t(3.0), false)]);
        assert_eq!(w.num_transitions(), 2);
        assert!(w.value_at(t(2.5)));
        assert!(!w.value_at(t(3.0)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_steps_rejects_unsorted() {
        let _ = Waveform::from_steps(false, &[(t(2.0), true), (t(1.0), false)]);
    }

    #[test]
    fn from_cycles_samples_per_period() {
        let w = Waveform::from_cycles(false, t(2.0), &[true, false, true]);
        assert!(!w.value_at(t(-0.5)));
        assert!(w.value_at(t(0.0)));
        assert!(w.value_at(t(1.9)));
        assert!(!w.value_at(t(2.0)));
        assert!(w.value_at(t(4.5)));
    }

    #[test]
    fn agrees_with_detects_divergence() {
        let a = Waveform::step(false, t(1.0), true);
        let b = Waveform::step(false, t(2.0), true);
        assert!(a.agrees_with(&b, t(3.0), t(10.0)));
        assert!(!a.agrees_with(&b, t(0.0), t(3.0)));
        assert!(a.agrees_with(&a.clone(), t(-5.0), t(5.0)));
    }

    #[test]
    fn push_toggle_extends() {
        let mut w = Waveform::constant(false);
        w.push_toggle(t(1.0));
        w.push_toggle(t(2.0));
        assert!(w.value_at(t(1.5)));
        assert!(!w.value_at(t(2.5)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_toggle_rejects_past() {
        let mut w = Waveform::constant(false);
        w.push_toggle(t(2.0));
        w.push_toggle(t(1.0));
    }
}
