//! Timed Boolean Functions (TBFs): timing-aware Boolean modeling of gates,
//! latches, and synchronous circuits.
//!
//! A TBF is a Boolean function whose arguments are *time-shifted* signals —
//! `f(t) = x₁(t − 1.5)·x̄₁(t − 4)·x₁(t − 5) + x̄₁(t − 2)` is the flattened
//! TBF of the DAC 1994 paper's Figure-2 circuit. TBFs capture complete
//! functional *and* timing behaviour in one object: gates become shifted
//! literals, buffers with unequal rise/fall delays become conjunctions or
//! disjunctions of two shifts of the same signal, and an edge-triggered
//! flip-flop becomes the sampling operator `Q(t) = D(P·⌊(t−d)/P⌋)` — memory
//! without feedback.
//!
//! This crate provides the formalism at two levels:
//!
//! * **Denotational** ([`Tbf`], [`Waveform`]): an AST with the paper's
//!   Figure-1 gate models and an exact evaluator over piecewise-constant
//!   binary waveforms. Used to validate the algebra and the worked examples.
//! * **Symbolic** ([`ConeExtractor`], [`TimedVarTable`]): the discretization
//!   engine. For a clock period `τ` it compiles each combinational cone of a
//!   sequential circuit into a BDD over `(leaf, shift)` variables — the
//!   paper's `y_i(n) = f_i(…, y_j(n − m_{ij}), …)` normal form — by a
//!   dynamic program over the gate DAG memoized on (node, accumulated
//!   downstream delay). The same extractor, handed a different leaf policy,
//!   yields the floating-delay and transition-delay functions and the
//!   untimed next-state functions used for reachability.
//!
//! # Examples
//!
//! ```
//! use mct_netlist::Time;
//! use mct_tbf::{Tbf, Waveform};
//!
//! // An OR gate with per-pin delays 1 and 2 (paper Figure 1a style):
//! let f = Tbf::or(vec![
//!     Tbf::input(0, Time::from_f64(1.0)),
//!     Tbf::input(1, Time::from_f64(2.0)),
//! ]);
//! let w0 = Waveform::step(false, Time::ZERO, true); // x0 rises at t = 0
//! let w1 = Waveform::constant(false);
//! // At t = 0.5 the rise has not propagated; at t = 1 it has.
//! assert!(!f.eval(Time::from_f64(0.5), Time::UNIT, &|s, t| [&w0, &w1][s].value_at(t)));
//! assert!(f.eval(Time::from_f64(1.0), Time::UNIT, &|s, t| [&w0, &w1][s].value_at(t)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod extract;
mod order;
mod reachability;
mod symbolic;
mod transfer;
mod vars;
mod waveform;

pub use ast::Tbf;
pub use error::TbfError;
pub use extract::{
    ConeExtractor, DelayClass, DiscreteMachine, LeafPolicy, PathEdge, SigmaConeCache,
};
pub use order::{apply_sift_groups, export_order, OrderPolicy, StaticOrder};
pub use reachability::{count_states, reachable_states};
pub use symbolic::circuit_tbf;
pub use transfer::transfer_bdd;
pub use vars::{TimedVar, TimedVarTable};
pub use waveform::Waveform;

#[cfg(test)]
mod proptests;
