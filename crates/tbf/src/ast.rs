//! The TBF expression tree and its denotational semantics.

use mct_netlist::{GateKind, PinDelay, Time};
use std::fmt;

/// A Timed Boolean Function over a set of input signals (Definition 1 of the
/// paper, restricted to the constructors sufficient for digital circuits:
/// identity, Boolean operations, constant time shifts, and the flip-flop
/// sampling operator).
///
/// Signals are referred to by dense index; callers keep the index → name
/// map. The AST is a tree (no sharing); it is meant for the formalism,
/// worked examples, and differential testing — the production discretization
/// works directly on circuit DAGs (see [`ConeExtractor`](crate::ConeExtractor)).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Tbf {
    /// A constant signal.
    Const(bool),
    /// `x_signal(t − delay)`: the signal observed `delay` earlier.
    Input {
        /// Dense signal index.
        signal: usize,
        /// The (non-negative) time shift.
        delay: Time,
    },
    /// Negation.
    Not(Box<Tbf>),
    /// Conjunction of one or more terms.
    And(Vec<Tbf>),
    /// Disjunction of one or more terms.
    Or(Vec<Tbf>),
    /// Parity of one or more terms.
    Xor(Vec<Tbf>),
    /// The edge-triggered flip-flop operator
    /// `Q(t) = D(P·⌊(t − delay)/P⌋)` — the data expression sampled at the
    /// most recent clock edge at least `delay` ago, where `P` is the clock
    /// period supplied at evaluation time. Memory without feedback.
    Sampled {
        /// The data expression `D`.
        data: Box<Tbf>,
        /// The flip-flop's clock-to-Q delay `d`.
        delay: Time,
    },
    /// A level-sensitive (transparent-high) latch — the paper's named
    /// future-work extension, expressible in the same argument-transformation
    /// style: with clock period `P` and a high phase `[nP, nP + width)`,
    ///
    /// ```text
    /// Q(t) = D(t)                      while the latch is transparent,
    /// Q(t) = D(⌊t/P⌋·P + width − ε)    while it is opaque
    /// ```
    ///
    /// (the held value is the data at the closing edge; `ε` is one
    /// milli-unit, the resolution of [`Time`]). `delay` shifts the whole
    /// operator like a clock-to-Q delay.
    Transparent {
        /// The data expression `D`.
        data: Box<Tbf>,
        /// Data-to-Q delay.
        delay: Time,
        /// Width of the transparent (high) phase; clamped to the period at
        /// evaluation time.
        width: Time,
    },
}

impl Tbf {
    /// The undelayed signal `x_signal(t)`.
    pub fn signal(signal: usize) -> Tbf {
        Tbf::Input {
            signal,
            delay: Time::ZERO,
        }
    }

    /// The shifted signal `x_signal(t − delay)`.
    pub fn input(signal: usize, delay: Time) -> Tbf {
        Tbf::Input { signal, delay }
    }

    /// Negation, collapsing double negations.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tbf {
        match self {
            Tbf::Not(inner) => *inner,
            Tbf::Const(b) => Tbf::Const(!b),
            other => Tbf::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn and(terms: Vec<Tbf>) -> Tbf {
        assert!(!terms.is_empty(), "empty conjunction");
        Tbf::And(terms)
    }

    /// N-ary disjunction.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn or(terms: Vec<Tbf>) -> Tbf {
        assert!(!terms.is_empty(), "empty disjunction");
        Tbf::Or(terms)
    }

    /// N-ary parity.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn xor(terms: Vec<Tbf>) -> Tbf {
        assert!(!terms.is_empty(), "empty parity");
        Tbf::Xor(terms)
    }

    /// The flip-flop sampling operator (paper Figure 1d / Section 3.1
    /// item 4).
    pub fn sampled(data: Tbf, delay: Time) -> Tbf {
        Tbf::Sampled {
            data: Box::new(data),
            delay,
        }
    }

    /// A transparent-high level-sensitive latch (see [`Tbf::Transparent`]).
    pub fn transparent(data: Tbf, delay: Time, width: Time) -> Tbf {
        Tbf::Transparent {
            data: Box::new(data),
            delay,
            width,
        }
    }

    /// Models a buffer whose rising and falling delays differ (paper
    /// Figure 1b / Section 3.1 item 2): for `τ_r > τ_f` the output is
    /// `x(t−τ_r)·x(t−τ_f)`, for `τ_r < τ_f` it is `x(t−τ_r)+x(t−τ_f)`,
    /// and for equal delays a single shifted literal.
    pub fn rise_fall_buffer(inner: Tbf, delay: PinDelay) -> Tbf {
        use std::cmp::Ordering;
        match delay.rise.cmp(&delay.fall) {
            Ordering::Equal => inner.shifted(delay.rise),
            Ordering::Greater => Tbf::and(vec![
                inner.clone().shifted(delay.rise),
                inner.shifted(delay.fall),
            ]),
            Ordering::Less => Tbf::or(vec![
                inner.clone().shifted(delay.rise),
                inner.shifted(delay.fall),
            ]),
        }
    }

    /// Models a whole gate with per-pin rise/fall delays (paper Figure 1c /
    /// Section 3.1 item 3): each input goes through a
    /// [`rise_fall_buffer`](Self::rise_fall_buffer) and the functional block
    /// itself is delay-free.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `delays` lengths differ, the arity is invalid
    /// for `kind`, or `inputs` is empty.
    pub fn gate(kind: GateKind, inputs: Vec<Tbf>, delays: &[PinDelay]) -> Tbf {
        assert_eq!(inputs.len(), delays.len(), "pin delay count mismatch");
        assert!(!inputs.is_empty(), "gate with no inputs");
        if let Some(max) = kind.max_inputs() {
            assert!(inputs.len() <= max, "too many inputs for {kind}");
        }
        let buffered: Vec<Tbf> = inputs
            .into_iter()
            .zip(delays)
            .map(|(i, &d)| Tbf::rise_fall_buffer(i, d))
            .collect();
        match kind {
            GateKind::Buf => buffered.into_iter().next().expect("one input"),
            GateKind::Not => buffered.into_iter().next().expect("one input").not(),
            GateKind::And => Tbf::and(buffered),
            GateKind::Nand => Tbf::and(buffered).not(),
            GateKind::Or => Tbf::or(buffered),
            GateKind::Nor => Tbf::or(buffered).not(),
            GateKind::Xor => Tbf::xor(buffered),
            GateKind::Xnor => Tbf::xor(buffered).not(),
        }
    }

    /// Adds `shift` to the time argument of every signal reference
    /// (argument transformation `t ↦ t − shift`). Sampling operators absorb
    /// the shift into their delay.
    pub fn shifted(self, shift: Time) -> Tbf {
        if shift.is_zero() {
            return self;
        }
        match self {
            Tbf::Const(b) => Tbf::Const(b),
            Tbf::Input { signal, delay } => Tbf::Input {
                signal,
                delay: delay + shift,
            },
            Tbf::Not(inner) => Tbf::Not(Box::new(inner.shifted(shift))),
            Tbf::And(ts) => Tbf::And(ts.into_iter().map(|t| t.shifted(shift)).collect()),
            Tbf::Or(ts) => Tbf::Or(ts.into_iter().map(|t| t.shifted(shift)).collect()),
            Tbf::Xor(ts) => Tbf::Xor(ts.into_iter().map(|t| t.shifted(shift)).collect()),
            Tbf::Sampled { data, delay } => Tbf::Sampled {
                data,
                delay: delay + shift,
            },
            Tbf::Transparent { data, delay, width } => Tbf::Transparent {
                data,
                delay: delay + shift,
                width,
            },
        }
    }

    /// Substitutes `replacement` for every reference to `signal`,
    /// transforming the replacement's time argument by the reference's shift
    /// (TBF composition, Definition 1's closure under composition).
    pub fn compose(&self, signal: usize, replacement: &Tbf) -> Tbf {
        match self {
            Tbf::Const(b) => Tbf::Const(*b),
            Tbf::Input { signal: s, delay } => {
                if *s == signal {
                    replacement.clone().shifted(*delay)
                } else {
                    Tbf::Input {
                        signal: *s,
                        delay: *delay,
                    }
                }
            }
            Tbf::Not(inner) => Tbf::Not(Box::new(inner.compose(signal, replacement))),
            Tbf::And(ts) => Tbf::And(ts.iter().map(|t| t.compose(signal, replacement)).collect()),
            Tbf::Or(ts) => Tbf::Or(ts.iter().map(|t| t.compose(signal, replacement)).collect()),
            Tbf::Xor(ts) => Tbf::Xor(ts.iter().map(|t| t.compose(signal, replacement)).collect()),
            Tbf::Sampled { data, delay } => Tbf::Sampled {
                data: Box::new(data.compose(signal, replacement)),
                delay: *delay,
            },
            Tbf::Transparent { data, delay, width } => Tbf::Transparent {
                data: Box::new(data.compose(signal, replacement)),
                delay: *delay,
                width: *width,
            },
        }
    }

    /// Evaluates the TBF at time `t` with clock period `period`, reading
    /// input signal values from `signals(index, time)`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and a [`Tbf::Sampled`] node is
    /// reached.
    pub fn eval(&self, t: Time, period: Time, signals: &dyn Fn(usize, Time) -> bool) -> bool {
        match self {
            Tbf::Const(b) => *b,
            Tbf::Input { signal, delay } => signals(*signal, t - *delay),
            Tbf::Not(inner) => !inner.eval(t, period, signals),
            Tbf::And(ts) => ts.iter().all(|f| f.eval(t, period, signals)),
            Tbf::Or(ts) => ts.iter().any(|f| f.eval(t, period, signals)),
            Tbf::Xor(ts) => ts.iter().filter(|f| f.eval(t, period, signals)).count() % 2 == 1,
            Tbf::Sampled { data, delay } => {
                assert!(
                    period > Time::ZERO,
                    "sampling requires a positive clock period"
                );
                let arg = t - *delay;
                let edge =
                    Time::from_millis(arg.millis().div_euclid(period.millis()) * period.millis());
                data.eval(edge, period, signals)
            }
            Tbf::Transparent { data, delay, width } => {
                assert!(
                    period > Time::ZERO,
                    "a latch requires a positive clock period"
                );
                let arg = t - *delay;
                let p = period.millis();
                let w = width.millis().clamp(1, p);
                let phase = arg.millis().rem_euclid(p);
                let sample = if phase < w {
                    arg
                } else {
                    // Hold the value from just before the closing edge.
                    Time::from_millis(arg.millis().div_euclid(p) * p + w - 1)
                };
                data.eval(sample, period, signals)
            }
        }
    }

    /// The largest constant time shift appearing in the expression — the
    /// paper's `L`, beyond which the machine is in steady state.
    pub fn max_shift(&self) -> Time {
        match self {
            Tbf::Const(_) => Time::ZERO,
            Tbf::Input { delay, .. } => *delay,
            Tbf::Not(inner) => inner.max_shift(),
            Tbf::And(ts) | Tbf::Or(ts) | Tbf::Xor(ts) => {
                ts.iter().map(Tbf::max_shift).max().unwrap_or(Time::ZERO)
            }
            Tbf::Sampled { data, delay } => data.max_shift().max(*delay),
            Tbf::Transparent { data, delay, .. } => data.max_shift().max(*delay),
        }
    }

    /// Renders with signal names supplied by `names` (falls back to `x<i>`).
    pub fn display_with<'a>(&'a self, names: &'a [&'a str]) -> impl fmt::Display + 'a {
        TbfDisplay { tbf: self, names }
    }
}

struct TbfDisplay<'a> {
    tbf: &'a Tbf,
    names: &'a [&'a str],
}

fn signal_name(names: &[&str], i: usize) -> String {
    names
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("x{i}"))
}

fn fmt_tbf(t: &Tbf, names: &[&str], f: &mut fmt::Formatter<'_>, parent_and: bool) -> fmt::Result {
    match t {
        Tbf::Const(b) => write!(f, "{}", u8::from(*b)),
        Tbf::Input { signal, delay } => {
            if delay.is_zero() {
                write!(f, "{}(t)", signal_name(names, *signal))
            } else {
                write!(f, "{}(t-{})", signal_name(names, *signal), delay)
            }
        }
        Tbf::Not(inner) => {
            write!(f, "¬")?;
            match **inner {
                Tbf::Input { .. } | Tbf::Const(_) => fmt_tbf(inner, names, f, true),
                _ => {
                    write!(f, "(")?;
                    fmt_tbf(inner, names, f, false)?;
                    write!(f, ")")
                }
            }
        }
        Tbf::And(ts) => {
            for (i, term) in ts.iter().enumerate() {
                if i > 0 {
                    write!(f, "·")?;
                }
                match term {
                    Tbf::Or(_) | Tbf::Xor(_) => {
                        write!(f, "(")?;
                        fmt_tbf(term, names, f, true)?;
                        write!(f, ")")?;
                    }
                    _ => fmt_tbf(term, names, f, true)?,
                }
            }
            Ok(())
        }
        Tbf::Or(ts) | Tbf::Xor(ts) => {
            let op = if matches!(t, Tbf::Or(_)) {
                " + "
            } else {
                " ⊕ "
            };
            let need_paren = parent_and;
            if need_paren {
                write!(f, "(")?;
            }
            for (i, term) in ts.iter().enumerate() {
                if i > 0 {
                    write!(f, "{op}")?;
                }
                fmt_tbf(term, names, f, false)?;
            }
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        Tbf::Sampled { data, delay } => {
            write!(f, "[")?;
            fmt_tbf(data, names, f, false)?;
            if delay.is_zero() {
                write!(f, "]@⌊t/P⌋P")
            } else {
                write!(f, "]@⌊(t-{})/P⌋P", delay)
            }
        }
        Tbf::Transparent { data, delay, width } => {
            write!(f, "⟨")?;
            fmt_tbf(data, names, f, false)?;
            if delay.is_zero() {
                write!(f, "⟩latch(w={width})")
            } else {
                write!(f, "⟩latch(w={width},d={delay})")
            }
        }
    }
}

impl fmt::Display for TbfDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_tbf(self.tbf, self.names, f, false)
    }
}

impl fmt::Display for Tbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_tbf(self, &[], f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    fn t(v: f64) -> Time {
        Time::from_f64(v)
    }

    #[test]
    fn figure1a_complex_gate() {
        // y(t) = x̄₁(t−τ₁) + x₂(t−τ₂) + x₃(t−τ₃)
        let y = Tbf::or(vec![
            Tbf::input(0, t(1.0)).not(),
            Tbf::input(1, t(2.0)),
            Tbf::input(2, t(3.0)),
        ]);
        // All signals low: x̄₁ term fires → output 1.
        assert!(y.eval(t(10.0), Time::UNIT, &|_, _| false));
        // x₁ high, others low → output 0.
        assert!(!y.eval(t(10.0), Time::UNIT, &|s, _| s == 0));
    }

    #[test]
    fn figure1b_buffer_rise_slower() {
        // τ_r = 2 > τ_f = 1: y = x(t−2)·x(t−1).
        let y = Tbf::rise_fall_buffer(Tbf::signal(0), PinDelay::new(t(2.0), t(1.0)));
        let w = Waveform::step(false, Time::ZERO, true); // rises at 0
        let read = |_: usize, at: Time| w.value_at(at);
        // The rising edge appears after the *rising* delay 2.
        assert!(!y.eval(t(1.5), Time::UNIT, &read));
        assert!(y.eval(t(2.0), Time::UNIT, &read));
        // A falling edge appears after the falling delay 1.
        let wf = Waveform::step(true, Time::ZERO, false);
        let readf = |_: usize, at: Time| wf.value_at(at);
        assert!(yf_still_high(&y, &readf, 0.999));
        assert!(!y.eval(t(1.0), Time::UNIT, &readf));
        fn yf_still_high(y: &Tbf, read: &dyn Fn(usize, Time) -> bool, at: f64) -> bool {
            y.eval(Time::from_f64(at), Time::UNIT, read)
        }
    }

    #[test]
    fn figure1c_or_gate_per_pin_rise_fall() {
        // Paper Figure 1(b): OR with pin 1 (rise 1, fall 2), pin 2 (rise 4, fall 3):
        // y = x₁(t−1)+x₁(t−2) + x₂(t−4)·x₂(t−3).
        let y = Tbf::gate(
            GateKind::Or,
            vec![Tbf::signal(0), Tbf::signal(1)],
            &[PinDelay::new(t(1.0), t(2.0)), PinDelay::new(t(4.0), t(3.0))],
        );
        let shown = y.to_string();
        assert!(shown.contains("x0(t-1)"), "{shown}");
        assert!(shown.contains("x0(t-2)"), "{shown}");
        assert!(shown.contains("x1(t-4)·x1(t-3)"), "{shown}");
        // x0 rises at 0, x1 stays low: output rises at rise delay 1.
        let w0 = Waveform::step(false, Time::ZERO, true);
        let read = |s: usize, at: Time| if s == 0 { w0.value_at(at) } else { false };
        assert!(!y.eval(t(0.5), Time::UNIT, &read));
        assert!(y.eval(t(1.0), Time::UNIT, &read));
    }

    #[test]
    fn sampled_holds_between_edges() {
        // Q(t) = D(P⌊t/P⌋) with D = x₀(t): a register sampling x₀.
        let q = Tbf::sampled(Tbf::signal(0), Time::ZERO);
        let w = Waveform::step(false, t(0.5), true); // D rises mid-cycle
        let read = |_: usize, at: Time| w.value_at(at);
        let period = t(2.0);
        // Cycle [0,2): sampled at t=0 → 0, held even after D rises.
        assert!(!q.eval(t(1.9), period, &read));
        // Next edge t=2 samples 1.
        assert!(q.eval(t(2.0), period, &read));
        assert!(q.eval(t(3.9), period, &read));
    }

    #[test]
    fn sampled_with_clock_to_q_delay() {
        let q = Tbf::sampled(Tbf::signal(0), t(0.5));
        let w = Waveform::step(false, Time::ZERO, true);
        let read = |_: usize, at: Time| w.value_at(at);
        let period = t(2.0);
        // Edge at t=0 samples 1, but Q shows it only after clock-to-Q 0.5:
        // Q(t) = D(P⌊(t−0.5)/P⌋); at t=0.4 the floor argument is negative →
        // previous edge (t=−2) → 0.
        assert!(!q.eval(t(0.4), period, &read));
        assert!(q.eval(t(0.5), period, &read));
    }

    #[test]
    fn example1_flattening_by_composition() {
        // Paper Example 1: flatten the gate network and verify the final TBF
        //   g(t) = f(t−1.5)·f̄(t−4)·f(t−5) + f̄(t−2).
        // Signals: index 0 = f.
        let f = 0;
        let c = Tbf::input(f, t(1.5));
        let d = Tbf::input(f, t(4.0)).not();
        let e = Tbf::input(f, t(5.0));
        let a = Tbf::and(vec![c, d, e]);
        let b = Tbf::input(f, t(2.0)).not();
        let g = Tbf::or(vec![a, b]);
        assert_eq!(
            g.display_with(&["f"]).to_string(),
            "f(t-1.5)·¬f(t-4)·f(t-5) + ¬f(t-2)"
        );
        assert_eq!(g.max_shift(), t(5.0));
    }

    #[test]
    fn compose_applies_argument_transformation() {
        // h = x₀(t−1); replace x₀ by x₁(t−2): h = x₁(t−3).
        let h = Tbf::input(0, t(1.0));
        let repl = Tbf::input(1, t(2.0));
        let composed = h.compose(0, &repl);
        assert_eq!(composed, Tbf::input(1, t(3.0)));
    }

    #[test]
    fn compose_leaves_other_signals() {
        let h = Tbf::and(vec![Tbf::signal(0), Tbf::signal(1)]);
        let composed = h.compose(0, &Tbf::Const(true));
        assert_eq!(composed, Tbf::and(vec![Tbf::Const(true), Tbf::signal(1)]));
    }

    #[test]
    fn not_collapses() {
        let x = Tbf::signal(0);
        assert_eq!(x.clone().not().not(), x);
        assert_eq!(Tbf::Const(true).not(), Tbf::Const(false));
    }

    #[test]
    fn xor_parity_semantics() {
        let f = Tbf::xor(vec![Tbf::signal(0), Tbf::signal(1), Tbf::signal(2)]);
        let read3 = |mask: u32| move |s: usize, _: Time| mask >> s & 1 == 1;
        assert!(!f.eval(Time::ZERO, Time::UNIT, &read3(0b000)));
        assert!(f.eval(Time::ZERO, Time::UNIT, &read3(0b001)));
        assert!(!f.eval(Time::ZERO, Time::UNIT, &read3(0b011)));
        assert!(f.eval(Time::ZERO, Time::UNIT, &read3(0b111)));
    }

    #[test]
    fn max_shift_through_operators() {
        let f = Tbf::or(vec![
            Tbf::and(vec![Tbf::input(0, t(1.5)), Tbf::input(0, t(5.0))]),
            Tbf::input(0, t(2.0)).not(),
        ]);
        assert_eq!(f.max_shift(), t(5.0));
        assert_eq!(Tbf::Const(true).max_shift(), Time::ZERO);
    }

    #[test]
    fn gate_constructor_all_kinds() {
        let sym = [PinDelay::symmetric(Time::UNIT); 2];
        for kind in GateKind::ALL {
            let n = if kind.max_inputs() == Some(1) { 1 } else { 2 };
            let g = Tbf::gate(kind, (0..n).map(Tbf::signal).collect(), &sym[..n]);
            // Agreement with the untimed gate on settled inputs.
            for mask in 0..(1u32 << n) {
                let read = |s: usize, _: Time| mask >> s & 1 == 1;
                let inputs: Vec<bool> = (0..n).map(|s| mask >> s & 1 == 1).collect();
                assert_eq!(
                    g.eval(t(100.0), Time::UNIT, &read),
                    kind.eval(&inputs),
                    "{kind} mask {mask:b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty conjunction")]
    fn empty_and_panics() {
        let _ = Tbf::and(vec![]);
    }

    #[test]
    fn transparent_latch_passes_while_high() {
        // Transparent-high latch, period 4, width 2: D changes at t = 1
        // (inside the window) appear immediately; changes at t = 3 (opaque)
        // are held until the next window.
        let q = Tbf::transparent(Tbf::signal(0), Time::ZERO, t(2.0));
        let period = t(4.0);
        let w = Waveform::from_steps(false, &[(t(1.0), true), (t(3.0), false), (t(9.0), true)]);
        let read = |_: usize, at: Time| w.value_at(at);
        // t = 1.5: transparent, passes the new 1.
        assert!(q.eval(t(1.5), period, &read));
        // t = 3.5: opaque; holds the value at the window close (just
        // before t = 2), which was 1 — the drop at t = 3 is invisible.
        assert!(q.eval(t(3.5), period, &read));
        // Next window [4, 6): transparent again, D is now 0.
        assert!(!q.eval(t(4.5), period, &read));
        // Window [8, 12): D rises at 9 inside the window → visible at 9.
        assert!(!q.eval(t(8.5), period, &read));
        assert!(q.eval(t(9.0), period, &read));
    }

    #[test]
    fn transparent_latch_display_and_shift() {
        let q = Tbf::transparent(Tbf::signal(0), Time::ZERO, t(2.0));
        assert!(q.to_string().contains("latch(w=2)"));
        let shifted = q.shifted(t(0.5));
        match shifted {
            Tbf::Transparent { delay, .. } => assert_eq!(delay, t(0.5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transparent_latch_full_width_is_wire() {
        // Width = period: always transparent — the latch is a wire.
        let q = Tbf::transparent(Tbf::signal(0), Time::ZERO, t(4.0));
        let period = t(4.0);
        let w = Waveform::from_steps(false, &[(t(0.5), true), (t(1.5), false)]);
        let read = |_: usize, at: Time| w.value_at(at);
        for probe in [0.0, 0.5, 1.0, 1.5, 3.9, 4.0, 7.7] {
            assert_eq!(
                q.eval(t(probe), period, &read),
                w.value_at(t(probe)),
                "t={probe}"
            );
        }
    }

    #[test]
    fn shifted_absorbs_into_sampled_delay() {
        let q = Tbf::sampled(Tbf::signal(0), t(0.5)).shifted(t(1.0));
        match q {
            Tbf::Sampled { delay, .. } => assert_eq!(delay, t(1.5)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
