//! Error type for TBF extraction.

use mct_netlist::NetlistError;
use std::fmt;

/// Errors produced while compiling circuit cones into timed BDDs.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TbfError {
    /// The (node, accumulated-delay) state space of the cone dynamic program
    /// exceeded the configured limit. This is the path-delay analogue of BDD
    /// blow-up: the circuit has too many distinct path-delay sums.
    ConeExplosion {
        /// Number of distinct states reached before giving up.
        entries: usize,
    },
    /// A structural problem in the underlying netlist.
    Netlist(NetlistError),
    /// A BDD handed to [`transfer_bdd`](crate::transfer_bdd) decides on a
    /// variable its source table has no [`TimedVar`](crate::TimedVar) for.
    UnmappedVariable {
        /// The raw source variable index.
        index: u32,
    },
}

impl fmt::Display for TbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbfError::ConeExplosion { entries } => write!(
                f,
                "cone extraction exceeded {entries} distinct (node, path-delay) states"
            ),
            TbfError::Netlist(e) => write!(f, "netlist error: {e}"),
            TbfError::UnmappedVariable { index } => write!(
                f,
                "BDD variable {index} has no timed-variable mapping in the source table"
            ),
        }
    }
}

impl std::error::Error for TbfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TbfError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for TbfError {
    fn from(e: NetlistError) -> Self {
        TbfError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TbfError::ConeExplosion { entries: 42 };
        assert!(e.to_string().contains("42"));
        let e: TbfError = NetlistError::UnknownName("x".into()).into();
        assert!(e.to_string().contains("unknown"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
