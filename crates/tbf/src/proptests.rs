//! Randomized property tests: the symbolic extraction agrees with direct
//! functional evaluation, and the TBF AST semantics are consistent
//! (seeded, reproducible).

use crate::{ConeExtractor, DiscreteMachine, Tbf, TimedVar, TimedVarTable, Waveform};
use mct_bdd::BddManager;
use mct_netlist::{Circuit, FsmView, GateKind, NetId, Time};
use mct_prng::SmallRng;

#[derive(Clone, Debug)]
struct Recipe {
    num_inputs: usize,
    num_dffs: usize,
    gates: Vec<(u8, u8, u8, u8)>, // kind selector, two input selectors, delay selector
}

fn random_recipe(rng: &mut SmallRng) -> Recipe {
    let num_inputs = rng.gen_range(1..3usize);
    let num_dffs = rng.gen_range(1..3usize);
    let ngates = rng.gen_range(1..12usize);
    let gates = (0..ngates)
        .map(|_| {
            (
                rng.gen_range(0..8u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(1..6u8),
            )
        })
        .collect();
    Recipe {
        num_inputs,
        num_dffs,
        gates,
    }
}

fn build(recipe: &Recipe) -> Circuit {
    let mut c = Circuit::new("rand");
    let mut nets: Vec<NetId> = Vec::new();
    for i in 0..recipe.num_inputs {
        nets.push(c.add_input(format!("in{i}")));
    }
    for i in 0..recipe.num_dffs {
        nets.push(c.add_dff(format!("ff{i}"), false, Time::ZERO));
    }
    for (gi, &(ks, i1, i2, ds)) in recipe.gates.iter().enumerate() {
        let kind = GateKind::ALL[ks as usize % GateKind::ALL.len()];
        let a = nets[i1 as usize % nets.len()];
        let b = nets[i2 as usize % nets.len()];
        let inputs: Vec<NetId> = if kind.max_inputs() == Some(1) {
            vec![a]
        } else {
            vec![a, b]
        };
        let id = c.add_gate(
            format!("g{gi}"),
            kind,
            &inputs,
            Time::from_millis(ds as i64 * 500),
        );
        nets.push(id);
    }
    for i in 0..recipe.num_dffs {
        c.connect_dff_data(&format!("ff{i}"), *nets.last().unwrap())
            .unwrap();
    }
    c.set_output(*nets.last().unwrap());
    c
}

fn for_random_circuits(seed: u64, mut check: impl FnMut(&Recipe)) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..48 {
        let recipe = random_recipe(&mut rng);
        check(&recipe);
    }
}

/// The functional extraction must agree with `Circuit::step` on every
/// leaf assignment (exhaustive over the small random machines).
#[test]
fn functional_extraction_matches_step() {
    for_random_circuits(20, |recipe| {
        let c = build(recipe);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let machine = DiscreteMachine::functional(&ex, &mut m, &mut tbl).unwrap();
        let nleaves = view.leaves().len();
        for mask in 0..(1u32 << nleaves) {
            let leaf_val = |i: usize| mask >> i & 1 == 1;
            let state: Vec<bool> = (0..view.num_state_bits()).map(leaf_val).collect();
            let inputs: Vec<bool> = (view.num_state_bits()..nleaves).map(leaf_val).collect();
            let (next, outs) = c.step(&state, &inputs);
            let assignment = |v: mct_bdd::Var| match tbl.timed_var(v) {
                Some(TimedVar::Shifted { leaf, shift: 0 }) => leaf_val(leaf),
                _ => false,
            };
            for (j, &bdd) in machine.next_state.iter().enumerate() {
                assert_eq!(m.eval(bdd, assignment), next[j]);
            }
            for (j, &bdd) in machine.outputs.iter().enumerate() {
                assert_eq!(m.eval(bdd, assignment), outs[j]);
            }
        }
    });
}

/// Steady state is the functional machine with every leaf one cycle
/// back: renaming shift-1 variables to shift-0 must give equal BDDs.
#[test]
fn steady_state_is_shift_renamed_functional() {
    for_random_circuits(21, |recipe| {
        let c = build(recipe);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let steady = DiscreteMachine::steady_state(&ex, &mut m, &mut tbl).unwrap();
        let func = DiscreteMachine::functional(&ex, &mut m, &mut tbl).unwrap();
        let nleaves = view.leaves().len();
        let map: Vec<(mct_bdd::Var, mct_bdd::Var)> = (0..nleaves)
            .map(|leaf| {
                (
                    tbl.var(TimedVar::Shifted { leaf, shift: 1 }),
                    tbl.var(TimedVar::Shifted { leaf, shift: 0 }),
                )
            })
            .collect();
        for (a, b) in steady.next_state.iter().zip(&func.next_state) {
            let renamed = m.rename_vars(*a, &map);
            assert_eq!(renamed, *b);
        }
    });
}

/// Delay classes are exactly the delays the leaf policy observes.
#[test]
fn classes_match_observed_delays() {
    for_random_circuits(22, |recipe| {
        let c = build(recipe);
        let view = FsmView::new(&c).unwrap();
        let ex = ConeExtractor::new(&view);
        let sinks: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
        let classes = ex.delay_classes(&sinks).unwrap();
        let mut m = BddManager::new();
        let mut tbl = TimedVarTable::new();
        let mut observed: Vec<(usize, i64)> = Vec::new();
        let mut policy = |mm: &mut BddManager, tt: &mut TimedVarTable, leaf: usize, k: i64| {
            observed.push((leaf, k));
            let v = tt.var(TimedVar::Arbitrary { leaf, delay: k });
            mm.var(v)
        };
        ex.extract(&mut m, &mut tbl, &sinks, &mut policy).unwrap();
        observed.sort_unstable();
        observed.dedup();
        let mut from_classes: Vec<(usize, i64)> =
            classes.iter().map(|c| (c.leaf, c.delay)).collect();
        from_classes.sort_unstable();
        assert_eq!(observed, from_classes);
        // Every representative path's edge delays sum to the class delay
        // minus the source clock-to-Q (zero in these machines).
        for class in &classes {
            let sum: i64 = class.path.iter().map(|e| e.delay).sum();
            assert_eq!(sum, class.delay);
        }
    });
}

/// AST evaluation is stable under composition: substituting a signal
/// by itself is the identity.
#[test]
fn compose_identity() {
    let mut rng = SmallRng::seed_from_u64(23);
    for _ in 0..64 {
        let n = rng.gen_range(1..5usize);
        let ds: Vec<i64> = (0..n).map(|_| rng.gen_range(0..5000i64)).collect();
        let f = Tbf::and(
            ds.iter()
                .map(|&d| Tbf::input(0, Time::from_millis(d)))
                .collect(),
        );
        let composed = f.compose(0, &Tbf::signal(0));
        assert_eq!(&composed, &f);
    }
}

/// Waveform value_at is consistent with transition counting.
#[test]
fn waveform_value_consistency() {
    let mut rng = SmallRng::seed_from_u64(24);
    for _ in 0..128 {
        let init = rng.gen_bool();
        let ntimes = rng.gen_range(0..10usize);
        let times: std::collections::BTreeSet<i64> =
            (0..ntimes).map(|_| rng.gen_range(1..10_000i64)).collect();
        let sorted: Vec<Time> = times.iter().map(|&t| Time::from_millis(t)).collect();
        let mut w = Waveform::constant(init);
        for &t in &sorted {
            w.push_toggle(t);
        }
        assert_eq!(w.final_value(), init ^ (sorted.len() % 2 == 1));
        // Probe between transitions.
        let mut expect = init;
        let mut prev = Time::from_millis(0);
        for (i, &t) in sorted.iter().enumerate() {
            // Value on [prev, t) is `expect`.
            let mid = Time::from_millis((prev.millis() + t.millis()) / 2);
            if mid >= prev && mid < t {
                assert_eq!(w.value_at(mid), expect, "segment {i}");
            }
            expect = !expect;
            prev = t;
        }
        assert_eq!(w.value_at(Time::from_millis(20_000)), expect);
    }
}
