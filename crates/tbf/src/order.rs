//! Structural static variable ordering for the timed-variable space.
//!
//! BDD size is hostage to variable order, and the timed analyses are worst
//! served by the default *allocation* order: variables appear in whatever
//! sequence the extraction happens to touch them, which scatters the timed
//! copies of one signal (`x(n−1)`, `x(n−2)`, `x'`, `x[r]`, …) across the
//! order. This module computes a *structural* order from the netlist before
//! any BDD is built:
//!
//! 1. a DFS over the gate DAG from the combinational sinks visits leaves in
//!    cone order, clustering leaves that feed the same logic (signals that
//!    interact sit near each other — the "Moore machine" interleaving
//!    argument: related current/next-state copies should be adjacent);
//! 2. for each leaf, *all* of its timed copies are emitted consecutively —
//!    `Next`, `Old`, every `Shifted` up to the maximum shift, and every
//!    `Absolute` cycle the decision basis can reference — so the copies of
//!    one signal occupy adjacent levels instead of being interleaved with
//!    unrelated signals by first-use order.
//!
//! Pre-registering this sequence into a fresh [`TimedVarTable`] pins the
//! levels, because tables allocate dense [`mct_bdd::Var`] indices in
//! registration order and the manager's level permutation starts as the
//! identity. Variables the analysis later invents anyway (rare shapes the
//! bound did not cover) append at the bottom — correct, merely suboptimal.
//!
//! Ordering is a performance lever only: analyses compare canonical
//! function handles, so any order produces bit-identical reports.

use crate::vars::{TimedVar, TimedVarTable};
use mct_bdd::BddManager;
use mct_netlist::{FsmView, NetId, Node};
use std::collections::HashSet;

/// How the timed-variable table lays out BDD variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrderPolicy {
    /// First-use allocation order (the historical behaviour).
    #[default]
    Alloc,
    /// Structural order pre-registered from the netlist (see
    /// [`StaticOrder`]).
    Static,
}

/// A precomputed structural order over [`TimedVar`]s.
#[derive(Clone, Debug)]
pub struct StaticOrder {
    vars: Vec<TimedVar>,
}

impl StaticOrder {
    /// Computes the structural order for `view`, covering time shifts up to
    /// `max_shift` cycles (callers derive the bound from the delay ceiling
    /// and the breakpoint floor; shifts beyond it fall back to allocation
    /// order at the bottom of the table).
    pub fn compute(view: &FsmView, max_shift: i64) -> StaticOrder {
        let max_shift = max_shift.max(1);
        let leaf_order = leaf_dfs_order(view);
        // Per leaf, every timed copy the analyses can reference, adjacent:
        // reachability copies first (Next pairs with Shifted{0} images),
        // then the sweep shifts, then the decision-basis absolute cycles
        // (cycle = r − s spans both signs), then transition/floating-mode
        // variants ordered by their delay key at the very end of the block.
        let mut vars = Vec::with_capacity(leaf_order.len() * (4 * max_shift as usize + 4));
        for &leaf in &leaf_order {
            vars.push(TimedVar::Next { leaf });
            vars.push(TimedVar::Old { leaf });
            for shift in 0..=max_shift {
                vars.push(TimedVar::Shifted { leaf, shift });
            }
            for cycle in -max_shift..=max_shift {
                vars.push(TimedVar::Absolute { leaf, cycle });
            }
        }
        StaticOrder { vars }
    }

    /// The ordered timed variables, root-most first.
    pub fn vars(&self) -> &[TimedVar] {
        &self.vars
    }

    /// Pre-registers the order into `table`, pinning the BDD levels of
    /// every covered timed variable. Idempotent: already-registered
    /// variables keep their index.
    pub fn apply(&self, table: &mut TimedVarTable) {
        table.preregister(self.vars.iter().copied());
    }
}

/// Leaves in first-visit DFS order from the combinational sinks, followed
/// by any leaf no sink reaches (in dense-index order).
fn leaf_dfs_order(view: &FsmView) -> Vec<usize> {
    let circuit = view.circuit();
    let mut order = Vec::with_capacity(view.leaves().len());
    let mut seen_leaf = vec![false; view.leaves().len()];
    let mut seen_net: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<NetId> = Vec::new();
    for sink in view.sinks() {
        stack.push(sink.net);
        while let Some(net) = stack.pop() {
            if !seen_net.insert(net) {
                continue;
            }
            if let Some(leaf) = view.leaf_index(net) {
                if !seen_leaf[leaf] {
                    seen_leaf[leaf] = true;
                    order.push(leaf);
                }
                continue;
            }
            if let Node::Gate { inputs, .. } = circuit.node(net) {
                // Reverse push so pins are visited left to right.
                for &input in inputs.iter().rev() {
                    stack.push(input);
                }
            }
        }
    }
    for (leaf, seen) in seen_leaf.iter().enumerate() {
        if !seen {
            order.push(leaf);
        }
    }
    order
}

/// Tags every variable the table knows with its leaf index as a sift
/// group, so dynamic reordering moves a leaf's timed copies (`x(n−1)`,
/// `x'`, `x[r]`, …) as one contiguous block instead of scattering them —
/// the dynamic-reorder counterpart of the [`StaticOrder`] interleaving
/// invariant. Idempotent; call again after the table grows to cover
/// late-allocated variables.
pub fn apply_sift_groups(manager: &mut BddManager, table: &TimedVarTable) {
    for (tv, v) in table.iter() {
        manager.set_var_group(v, tv.leaf() as u32);
    }
}

/// Exports the manager's *current* level order as a timed-variable
/// sequence, skipping levels whose variables the table does not know
/// (never allocated through it). Pre-registering the result into a fresh
/// table reproduces the order — the transport that lets parallel sweep
/// workers and warm starts inherit a learned (sifted) order instead of
/// re-deriving it.
pub fn export_order(manager: &BddManager, table: &TimedVarTable) -> Vec<TimedVar> {
    manager
        .level_order()
        .into_iter()
        .filter_map(|v| table.timed_var(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_bdd::Var;
    use mct_netlist::{Circuit, GateKind, Time};

    /// Two independent DFF loops plus one input; sinks reach q0 before q1.
    fn two_loop_circuit() -> Circuit {
        let mut c = Circuit::new("two_loop");
        let q0 = c.add_dff("q0", false, Time::ZERO);
        let q1 = c.add_dff("q1", false, Time::ZERO);
        let x = c.add_input("x");
        let n0 = c.add_gate("n0", GateKind::Not, &[q0], Time::UNIT);
        let a1 = c.add_gate("a1", GateKind::And, &[q1, x], Time::UNIT);
        c.connect_dff_data("q0", n0).unwrap();
        c.connect_dff_data("q1", a1).unwrap();
        c.set_output(q0);
        c
    }

    #[test]
    fn copies_of_one_leaf_are_adjacent() {
        let c = two_loop_circuit();
        let view = FsmView::new(&c).unwrap();
        let order = StaticOrder::compute(&view, 3);
        // Every leaf occupies one contiguous block.
        let leaf_of = |tv: &TimedVar| match *tv {
            TimedVar::Shifted { leaf, .. }
            | TimedVar::Absolute { leaf, .. }
            | TimedVar::Next { leaf }
            | TimedVar::Old { leaf }
            | TimedVar::Arbitrary { leaf, .. }
            | TimedVar::Primed { leaf, .. } => leaf,
        };
        let leaves: Vec<usize> = order.vars().iter().map(leaf_of).collect();
        let mut blocks = vec![leaves[0]];
        for &l in &leaves[1..] {
            if *blocks.last().unwrap() != l {
                blocks.push(l);
            }
        }
        let mut unique = blocks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            blocks.len(),
            unique.len(),
            "a leaf's timed copies are split across blocks: {blocks:?}"
        );
        assert_eq!(unique.len(), view.leaves().len(), "every leaf is covered");
    }

    #[test]
    fn covers_the_shift_and_cycle_ranges() {
        let c = two_loop_circuit();
        let view = FsmView::new(&c).unwrap();
        let order = StaticOrder::compute(&view, 2);
        for leaf in 0..view.leaves().len() {
            for shift in 0..=2 {
                assert!(order.vars().contains(&TimedVar::Shifted { leaf, shift }));
            }
            for cycle in -2..=2 {
                assert!(order.vars().contains(&TimedVar::Absolute { leaf, cycle }));
            }
            assert!(order.vars().contains(&TimedVar::Next { leaf }));
            assert!(order.vars().contains(&TimedVar::Old { leaf }));
        }
    }

    #[test]
    fn apply_pins_dense_indices_in_order() {
        let c = two_loop_circuit();
        let view = FsmView::new(&c).unwrap();
        let order = StaticOrder::compute(&view, 1);
        let mut table = TimedVarTable::new();
        order.apply(&mut table);
        assert_eq!(table.len(), order.vars().len());
        for (i, &tv) in order.vars().iter().enumerate() {
            assert_eq!(table.lookup(tv), Some(Var::new(i as u32)));
        }
        // Idempotent: re-applying allocates nothing new.
        order.apply(&mut table);
        assert_eq!(table.len(), order.vars().len());
    }

    #[test]
    fn export_roundtrips_through_preregistration() {
        let mut m = BddManager::new();
        let mut table = TimedVarTable::new();
        let tvs = [
            TimedVar::Shifted { leaf: 1, shift: 2 },
            TimedVar::Next { leaf: 0 },
            TimedVar::Shifted { leaf: 0, shift: 1 },
        ];
        for &tv in &tvs {
            let v = table.var(tv);
            let _ = m.var(v);
        }
        let exported = export_order(&m, &table);
        assert_eq!(exported, tvs.to_vec());
        // Importing into a fresh table reproduces the level assignment.
        let mut fresh = TimedVarTable::new();
        fresh.preregister(exported.iter().copied());
        for &tv in &tvs {
            assert_eq!(fresh.lookup(tv), table.lookup(tv));
        }
    }

    #[test]
    fn grouped_sift_keeps_leaf_copies_contiguous() {
        // Build a deliberately bad interleaving of three leaves' timed
        // copies, tag sift groups by leaf, and force a reorder: every
        // leaf's copies must still occupy one contiguous run of levels.
        let mut m = BddManager::new();
        let mut table = TimedVarTable::new();
        let mut by_leaf: Vec<Vec<mct_bdd::Bdd>> = Vec::new();
        for leaf in 0..3usize {
            let mut copies = Vec::new();
            for shift in 0..4 {
                let v = table.var(TimedVar::Shifted { leaf, shift });
                copies.push(m.var(v));
            }
            by_leaf.push(copies);
        }
        apply_sift_groups(&mut m, &table);
        // Couple leaf 0 with leaf 2 so sifting wants to move whole blocks
        // past the (independent) leaf-1 block sitting between them.
        let mut f = m.constant(true);
        let pairs: Vec<_> = by_leaf[0]
            .iter()
            .zip(&by_leaf[2])
            .map(|(&a, &b)| (a, b))
            .collect();
        for (a, b) in pairs {
            let x = m.xor(a, b);
            f = m.and(f, x);
        }
        let mids = by_leaf[1].clone();
        for v in mids {
            f = m.and(f, v);
        }
        m.sift(&[f]);
        let leaves: Vec<usize> = export_order(&m, &table)
            .iter()
            .map(|tv| tv.leaf())
            .collect();
        let mut blocks = vec![leaves[0]];
        for &l in &leaves[1..] {
            if *blocks.last().unwrap() != l {
                blocks.push(l);
            }
        }
        let mut unique = blocks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            blocks.len(),
            unique.len(),
            "grouped sift split a leaf's copies across blocks: {blocks:?}"
        );
    }

    #[test]
    fn unreached_leaves_still_appear() {
        // An input that feeds nothing is still a leaf; it must land at the
        // end of the order rather than be forgotten.
        let mut c = Circuit::new("dangling");
        let q = c.add_dff("q", false, Time::ZERO);
        let n = c.add_gate("n", GateKind::Not, &[q], Time::UNIT);
        let _unused = c.add_input("unused");
        c.connect_dff_data("q", n).unwrap();
        c.set_output(q);
        let view = FsmView::new(&c).unwrap();
        let order = StaticOrder::compute(&view, 1);
        for leaf in 0..view.leaves().len() {
            assert!(order.vars().contains(&TimedVar::Next { leaf }));
        }
    }
}
