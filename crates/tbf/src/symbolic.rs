//! Extraction of the *symbolic* TBF expression of a circuit cone — the
//! flattening the paper performs in its Example 1.
//!
//! Where [`ConeExtractor`](crate::ConeExtractor) compiles cones into BDDs
//! for a fixed clock period, this module produces the period-independent
//! [`Tbf`] *expression tree*, with every leaf a time-shifted reference to a
//! flip-flop output or primary input. For the paper's Figure-2 circuit the
//! result prints exactly as `f(t-1.5)·¬f(t-4)·f(t-5) + ¬f(t-2)`.
//!
//! The expression is a tree: reconvergent fan-out duplicates subtrees, so
//! extraction carries a node budget and fails cleanly on circuits whose
//! flattened form explodes (the budget exists for exactly the same reason
//! the paper's flattening is illustrative rather than the implementation
//! strategy).

use crate::ast::Tbf;
use crate::error::TbfError;
use mct_netlist::{FsmView, GateKind, NetId, Node};

/// Flattens the cone of `sink` into a TBF expression over the view's
/// leaves (signal index = dense leaf index). Source flip-flop clock-to-Q
/// delays are folded into the leaf shifts, matching the `k_ij = h_ij +
/// d_fj` accounting of the analysis.
///
/// # Errors
///
/// [`TbfError::ConeExplosion`] if the flattened tree would exceed
/// `node_budget` operator nodes.
///
/// # Examples
///
/// ```
/// use mct_netlist::{Circuit, FsmView, GateKind, Time};
/// use mct_tbf::circuit_tbf;
///
/// let mut c = Circuit::new("toggler");
/// let q = c.add_dff("q", false, Time::ZERO);
/// let nq = c.add_gate("nq", GateKind::Not, &[q], Time::UNIT);
/// c.connect_dff_data("q", nq).unwrap();
/// c.set_output(q);
/// let view = FsmView::new(&c).unwrap();
/// let tbf = circuit_tbf(&view, nq, 1000).unwrap();
/// assert_eq!(tbf.display_with(&["q"]).to_string(), "¬q(t-1)");
/// ```
pub fn circuit_tbf(view: &FsmView<'_>, sink: NetId, node_budget: usize) -> Result<Tbf, TbfError> {
    let mut budget = node_budget;
    flatten(view, sink, &mut budget)
}

fn charge(budget: &mut usize, amount: usize) -> Result<(), TbfError> {
    if *budget < amount {
        return Err(TbfError::ConeExplosion { entries: 0 });
    }
    *budget -= amount;
    Ok(())
}

fn flatten(view: &FsmView<'_>, net: NetId, budget: &mut usize) -> Result<Tbf, TbfError> {
    charge(budget, 1)?;
    let circuit = view.circuit();
    match circuit.node(net) {
        Node::Input { .. } | Node::Dff { .. } => {
            let leaf = view.leaf_index(net).expect("leaves are inputs and dffs");
            let shift = view.leaf_source_delay(leaf);
            Ok(Tbf::input(leaf, shift))
        }
        Node::Gate {
            kind,
            inputs,
            pin_delays,
            ..
        } => {
            let mut terms = Vec::with_capacity(inputs.len());
            for (inp, pd) in inputs.iter().zip(pin_delays) {
                let sub = flatten(view, *inp, budget)?;
                terms.push(Tbf::rise_fall_buffer(sub, *pd));
            }
            Ok(match kind {
                GateKind::Buf => terms.into_iter().next().expect("arity checked"),
                GateKind::Not => terms.into_iter().next().expect("arity checked").not(),
                GateKind::And => Tbf::and(terms),
                GateKind::Nand => Tbf::and(terms).not(),
                GateKind::Or => Tbf::or(terms),
                GateKind::Nor => Tbf::or(terms).not(),
                GateKind::Xor => Tbf::xor(terms),
                GateKind::Xnor => Tbf::xor(terms).not(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_netlist::{Circuit, PinDelay, Time};

    fn t(v: f64) -> Time {
        Time::from_f64(v)
    }

    #[test]
    fn figure2_flattens_to_the_paper_equation() {
        let mut c = Circuit::new("fig2");
        let f = c.add_dff("f", true, Time::ZERO);
        let cb = c.add_gate("c", GateKind::Buf, &[f], t(1.5));
        let d = c.add_gate("d", GateKind::Not, &[f], t(4.0));
        let e = c.add_gate("e", GateKind::Buf, &[f], t(5.0));
        let a = c.add_gate("a", GateKind::And, &[cb, d, e], Time::ZERO);
        let b = c.add_gate("b", GateKind::Not, &[f], t(2.0));
        let g = c.add_gate("g", GateKind::Or, &[a, b], Time::ZERO);
        c.connect_dff_data("f", g).unwrap();
        c.set_output(f);
        let view = FsmView::new(&c).unwrap();
        let tbf = circuit_tbf(&view, g, 1000).unwrap();
        assert_eq!(
            tbf.display_with(&["f"]).to_string(),
            "f(t-1.5)·¬f(t-4)·f(t-5) + ¬f(t-2)"
        );
        assert_eq!(tbf.max_shift(), t(5.0));
    }

    #[test]
    fn clock_to_q_folds_into_leaf_shift() {
        let mut c = Circuit::new("c2q");
        let q = c.add_dff("q", false, t(0.5));
        let g = c.add_gate("g", GateKind::Not, &[q], t(1.0));
        c.connect_dff_data("q", g).unwrap();
        c.set_output(q);
        let view = FsmView::new(&c).unwrap();
        let tbf = circuit_tbf(&view, g, 100).unwrap();
        // Leaf shift = pin delay 1.0 + clock-to-Q 0.5.
        assert_eq!(tbf, Tbf::input(0, t(1.5)).not());
    }

    #[test]
    fn rise_fall_pins_expand_to_buffer_terms() {
        let mut c = Circuit::new("rf");
        let a = c.add_input("a");
        let g = c.add_gate_with_delays(
            "g",
            GateKind::Buf,
            &[a],
            vec![PinDelay::new(t(2.0), t(1.0))],
        );
        c.set_output(g);
        let view = FsmView::new(&c).unwrap();
        let tbf = circuit_tbf(&view, g, 100).unwrap();
        assert_eq!(tbf.to_string(), "x0(t-2)·x0(t-1)");
    }

    #[test]
    fn budget_caps_reconvergent_blowup() {
        // A ladder where each level reads the previous twice: the flattened
        // tree doubles per level.
        let mut c = Circuit::new("ladder");
        let q = c.add_dff("q", false, Time::ZERO);
        let mut cur = q;
        for i in 0..20 {
            cur = c.add_gate(format!("g{i}"), GateKind::And, &[cur, cur], t(1.0));
        }
        c.connect_dff_data("q", cur).unwrap();
        c.set_output(cur);
        let view = FsmView::new(&c).unwrap();
        let err = circuit_tbf(&view, cur, 10_000);
        assert!(matches!(err, Err(TbfError::ConeExplosion { .. })));
    }

    #[test]
    fn flattened_tbf_agrees_with_functional_eval() {
        // On settled waveforms the flattened TBF and the zero-delay circuit
        // evaluation agree.
        let mut c = Circuit::new("mix");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let q = c.add_dff("q", false, Time::ZERO);
        let g1 = c.add_gate("g1", GateKind::Xor, &[a, q], t(1.0));
        let g2 = c.add_gate("g2", GateKind::Nand, &[g1, b], t(2.0));
        c.connect_dff_data("q", g2).unwrap();
        c.set_output(g2);
        let view = FsmView::new(&c).unwrap();
        let tbf = circuit_tbf(&view, g2, 1000).unwrap();
        // Leaf order: q (state), then a, b.
        for mask in 0..8u32 {
            let leaf_val = move |leaf: usize, _at: Time| mask >> leaf & 1 == 1;
            let got = tbf.eval(t(100.0), Time::UNIT, &leaf_val);
            let vals = c.eval(|id| {
                let leaf = view.leaf_index(id).expect("leaf");
                mask >> leaf & 1 == 1
            });
            let expect = vals[g2.index()];
            assert_eq!(got, expect, "mask {mask:03b}");
        }
    }
}
