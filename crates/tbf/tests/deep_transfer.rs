//! Stack-safety regression for [`mct_tbf::transfer_bdd`]: importing a
//! ~10k-level source graph into a destination manager must not recurse
//! (the walk runs on an explicit frame stack).

use mct_bdd::{BddManager, Var};
use mct_tbf::{transfer_bdd, TimedVar, TimedVarTable};

const DEPTH: usize = 10_000;

fn tv(leaf: usize) -> TimedVar {
    TimedVar::Shifted { leaf, shift: 0 }
}

#[test]
fn deep_graph_transfers_between_managers() {
    // Pre-allocate both tables in leaf order so leaf i holds variable
    // index i in *both* managers; the chains below then build strictly
    // top-down (O(1) per level) and the transfer's bottom-up `ite` rebuild
    // is O(1) per level too. First-use allocation inside the loops would
    // instead put every new variable at the bottom of the order and make
    // construction quadratic — which is not what this test measures.
    let mut src = BddManager::new();
    let mut st = TimedVarTable::new();
    let mut dst = BddManager::new();
    let mut dt = TimedVarTable::new();
    for leaf in 0..DEPTH {
        st.var(tv(leaf));
        dt.var(tv(leaf));
    }

    // Parity chain DEPTH levels deep; parity keeps every level (and both
    // polarities) live, so the transfer walk must descend the full depth.
    let mut f = src.zero();
    for leaf in (0..DEPTH).rev() {
        let v = src.var(st.var(tv(leaf)));
        f = src.xor(v, f);
    }

    let g = transfer_bdd(&src, &st, f, &mut dst, &mut dt).unwrap();

    // Spot-check semantics on a few assignments through the two tables.
    let leaf_of = |tbl: &TimedVarTable, v: Var| match tbl.timed_var(v).unwrap() {
        TimedVar::Shifted { leaf, .. } => leaf,
        other => panic!("unexpected {other:?}"),
    };
    for ones in [0usize, 1, 2, DEPTH] {
        let sv = src.eval(f, |v| leaf_of(&st, v) < ones);
        let dv = dst.eval(g, |v| leaf_of(&dt, v) < ones);
        assert_eq!(sv, dv, "assignment with {ones} ones");
        assert_eq!(sv, ones % 2 == 1);
    }
}
