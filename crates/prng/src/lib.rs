//! A small, self-contained, deterministic pseudo-random number generator.
//!
//! The workspace must build with no external dependencies, so this crate
//! provides the tiny slice of a `rand`-style API the simulator, the
//! benchmark-circuit generator, and the randomized tests actually use: a
//! seedable non-cryptographic generator with uniform sampling over integer
//! ranges and booleans.
//!
//! The core is xoshiro256++ (Blackman & Vigna), seeded through splitmix64 —
//! the same construction `rand`'s `SmallRng` used on 64-bit targets, chosen
//! here for its period (2²⁵⁶ − 1), speed, and trivially portable
//! implementation. Streams are fully determined by the `u64` seed, so every
//! generated circuit and delay draw is reproducible across runs, platforms,
//! and thread counts.
//!
//! # Examples
//!
//! ```
//! use mct_prng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let a = rng.gen_range(0..10usize);
//! assert!(a < 10);
//! let b = rng.gen_range(1..=20i64);
//! assert!((1..=20).contains(&b));
//! let _flip: bool = rng.gen_bool();
//! // Same seed, same stream.
//! let mut rng2 = SmallRng::seed_from_u64(7);
//! assert_eq!(rng2.gen_range(0..10usize), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// xoshiro256++ generator seeded from a single `u64` via splitmix64.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform draw from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` (> 0), by Lemire's widening multiply
    /// with rejection of the biased low fraction.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            if wide as u64 >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Integer range types [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let off = rng.below(span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i64, u64, usize, u32, i32, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0..1usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool()).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn known_xoshiro_vector() {
        // splitmix64(0) seeds; first outputs must be stable across releases
        // (circuits generated from a seed are part of test expectations).
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = SmallRng::seed_from_u64(0);
        let second: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }
}
