//! Versioned on-disk persistence for the analysis service's hot artifacts.
//!
//! The service caches three expensive artifact classes in memory —
//! reachable-state snapshots, learned (sifted) variable orders, and
//! per-cone replay seeds — plus final report JSON. This crate gives the
//! three symbolic classes a durable form:
//!
//! * a **binary codec** (DDDMP-flavoured) for the plain-data mirrors from
//!   `mct-core` ([`ReachData`], [`OrderData`], [`ConeData`]): a fixed
//!   header carrying magic, format version, artifact kind, and a
//!   complement-edge flag, then little-endian fixed-width payloads whose
//!   node lists are topologically sorted with signed (negative =
//!   complemented) edge references — see `DESIGN.md` §12 for the full
//!   format specification;
//! * a **store directory manager** ([`Store`]) that owns a `--cache-dir`:
//!   byte-accounted writes with LRU eviction under a configurable budget,
//!   atomic tempfile-rename publication (safe against a daemon killed
//!   mid-write and against a second replica reading concurrently), and
//!   offline inspection (`ls`/`gc`/`rm`) for the `mct cache` subcommand.
//!
//! Decoding is hostile-input safe by construction: every read is
//! bounds-checked, every length is validated against the bytes that
//! remain, and any malformed, truncated, or mis-versioned file surfaces as
//! a [`StoreError`] the caller treats as a cache miss — never a panic.
//! Artifacts are keyed by the **layout** digest (plus the options
//! fingerprint where the in-memory tier uses one): snapshot BDD variables
//! are register *positions*, so two circuits with equal behaviour but
//! different register layouts must not share artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod dirstore;

pub use codec::{
    decode_cone, decode_order, decode_reach, encode_cone, encode_order, encode_reach, peek_kind,
    ArtifactKind, StoreError, FORMAT_VERSION, MAGIC,
};
pub use dirstore::{cone_name, order_name, reach_name, GcOutcome, Store, StoreEntry};

pub use mct_core::{ConeData, OrderData, ReachData};
