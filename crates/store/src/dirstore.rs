//! The `--cache-dir` directory manager: byte-accounted persistence with
//! LRU eviction, atomic publication, and offline inspection.
//!
//! One [`Store`] owns one directory. Files are flat (no subdirectories)
//! and named by artifact class and key:
//!
//! ```text
//! reach-<layout:032x>.mctb            reachable-state snapshot
//! order-<layout:032x>.mctb            learned variable order
//! cone-<layout:032x>-<fp:016x>.mctb   cone replay seed
//! <circuit:032x>-<fp:016x>.json       report (text format owned by the
//!                                     service's result cache)
//! ```
//!
//! The binary classes are keyed by the **layout** digest — the canonical
//! digest that still distinguishes register positions — because snapshot
//! BDD variables are register positions: a content-digest key would let a
//! behaviourally-equal circuit with permuted registers import a
//! positionally wrong reach set. Reports are keyed content-first (they are
//! position-free) exactly as the in-memory tier keys them.
//!
//! Writes go to a tempfile and `rename` into place, so a daemon killed
//! mid-write never leaves a half-written artifact under the real name and
//! a second replica reading the directory concurrently sees only complete
//! files. Byte accounting covers every regular file in the directory
//! (reports included); when a budget is configured, saves evict
//! least-recently-used files until the directory fits, and an artifact
//! bigger than the whole budget bypasses admission instead of flushing
//! everything else.

use crate::codec::{
    decode_cone, decode_order, decode_reach, encode_cone, encode_order, encode_reach, peek_kind,
    ArtifactKind,
};
use mct_core::{ConeData, OrderData, ReachData};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File name of a reach-snapshot artifact for a layout digest (callers
/// pass the digest pre-formatted as 32 lowercase hex digits).
pub fn reach_name(layout_hex: &str) -> String {
    format!("reach-{layout_hex}.mctb")
}

/// File name of a learned-order artifact for a layout digest.
pub fn order_name(layout_hex: &str) -> String {
    format!("order-{layout_hex}.mctb")
}

/// File name of a cone replay seed for a (cone layout digest, options
/// fingerprint) pair.
pub fn cone_name(layout_hex: &str, fingerprint: u64) -> String {
    format!("cone-{layout_hex}-{fingerprint:016x}.mctb")
}

/// One directory entry, as reported by [`Store::ls`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreEntry {
    /// Bare file name inside the store directory.
    pub file: String,
    /// Artifact class when the file is a valid store artifact; `None` for
    /// reports and foreign/corrupt files.
    pub kind: Option<ArtifactKind>,
    /// File size in bytes.
    pub bytes: u64,
}

/// What [`Store::gc`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcOutcome {
    /// Files removed (invalid ones plus LRU evictions).
    pub removed: usize,
    /// Bytes freed.
    pub freed: u64,
}

#[derive(Clone, Copy)]
struct FileInfo {
    len: u64,
    last_use: u64,
}

/// A byte-accounted artifact directory. See the module docs for layout
/// and eviction semantics.
pub struct Store {
    dir: PathBuf,
    max_bytes: Option<u64>,
    files: HashMap<String, FileInfo>,
    bytes: u64,
    next_tick: u64,
    evictions: u64,
}

impl Store {
    /// Opens (creating if needed) a store over `dir`, scanning existing
    /// files into the byte account. Initial recency follows file
    /// modification time, so a restarted daemon evicts the oldest
    /// artifacts first.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/read errors.
    pub fn open(dir: &Path, max_bytes: Option<u64>) -> io::Result<Store> {
        fs::create_dir_all(dir)?;
        let mut scanned: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            scanned.push((name, meta.len(), mtime));
        }
        scanned.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut files = HashMap::with_capacity(scanned.len());
        let mut bytes = 0u64;
        for (tick, (name, len, _)) in scanned.into_iter().enumerate() {
            bytes += len;
            files.insert(
                name,
                FileInfo {
                    len,
                    last_use: tick as u64,
                },
            );
        }
        let next_tick = files.len() as u64;
        Ok(Store {
            dir: dir.to_path_buf(),
            max_bytes,
            files,
            bytes,
            next_tick,
            evictions: 0,
        })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes currently accounted to the directory.
    pub fn bytes_in_use(&self) -> u64 {
        self.bytes
    }

    /// Files evicted to keep the directory under budget since open.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of files currently accounted.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    fn tick(&mut self) -> u64 {
        let t = self.next_tick;
        self.next_tick += 1;
        t
    }

    /// Saves raw bytes under `name`, atomically (tempfile + rename).
    /// Returns `false` when the artifact alone exceeds the byte budget and
    /// was bypassed rather than admitted.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed save leaves no partial file under
    /// `name`.
    pub fn save(&mut self, name: &str, bytes: &[u8]) -> io::Result<bool> {
        if let Some(max) = self.max_bytes {
            if bytes.len() as u64 > max {
                return Ok(false);
            }
        }
        let tmp = self.dir.join(format!("{name}.tmp"));
        fs::write(&tmp, bytes)?;
        let dst = self.dir.join(name);
        fs::rename(&tmp, &dst)?;
        if let Some(old) = self.files.remove(name) {
            self.bytes -= old.len;
        }
        let tick = self.tick();
        self.files.insert(
            name.to_owned(),
            FileInfo {
                len: bytes.len() as u64,
                last_use: tick,
            },
        );
        self.bytes += bytes.len() as u64;
        self.evict_to_budget(Some(name));
        Ok(true)
    }

    /// Loads raw bytes for `name`, refreshing its LRU recency. A missing
    /// or unreadable file is `None`.
    pub fn load(&mut self, name: &str) -> Option<Vec<u8>> {
        if !self.files.contains_key(name) {
            return None;
        }
        match fs::read(self.dir.join(name)) {
            Ok(bytes) => {
                let tick = self.tick();
                if let Some(info) = self.files.get_mut(name) {
                    info.last_use = tick;
                }
                Some(bytes)
            }
            Err(_) => {
                // The file vanished under us (another replica's gc, a
                // hostile rm -rf): drop the account entry and miss.
                if let Some(old) = self.files.remove(name) {
                    self.bytes -= old.len;
                }
                None
            }
        }
    }

    /// Removes `name` from disk and the account. Returns the bytes freed.
    pub fn remove(&mut self, name: &str) -> u64 {
        let Some(info) = self.files.remove(name) else {
            return 0;
        };
        self.bytes -= info.len;
        let _ = fs::remove_file(self.dir.join(name));
        info.len
    }

    fn evict_to_budget(&mut self, protect: Option<&str>) {
        let Some(max) = self.max_bytes else { return };
        while self.bytes > max {
            let victim = self
                .files
                .iter()
                .filter(|(name, _)| protect != Some(name.as_str()))
                .min_by_key(|(name, info)| (info.last_use, name.as_str()))
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else { break };
            self.remove(&victim);
            self.evictions += 1;
        }
    }

    // ------------------------------------------------- typed artifacts

    /// Persists a reach snapshot for a layout digest. Returns `false` on
    /// oversized bypass.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_reach(&mut self, layout_hex: &str, data: &ReachData) -> io::Result<bool> {
        self.save(&reach_name(layout_hex), &encode_reach(data))
    }

    /// Loads the reach snapshot for a layout digest. Any missing,
    /// truncated, corrupted, or mis-versioned file is a miss (`None`),
    /// never a panic.
    pub fn load_reach(&mut self, layout_hex: &str) -> Option<ReachData> {
        let bytes = self.load(&reach_name(layout_hex))?;
        decode_reach(&bytes).ok()
    }

    /// Persists a learned order for a layout digest. Returns `false` on
    /// oversized bypass.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_order(&mut self, layout_hex: &str, data: &OrderData) -> io::Result<bool> {
        self.save(&order_name(layout_hex), &encode_order(data))
    }

    /// Loads the learned order for a layout digest; any bad file is a
    /// miss.
    pub fn load_order(&mut self, layout_hex: &str) -> Option<OrderData> {
        let bytes = self.load(&order_name(layout_hex))?;
        decode_order(&bytes).ok()
    }

    /// Persists a cone replay seed for a (cone layout digest, options
    /// fingerprint) pair. Returns `false` on oversized bypass.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_cone(
        &mut self,
        layout_hex: &str,
        fingerprint: u64,
        data: &ConeData,
    ) -> io::Result<bool> {
        self.save(&cone_name(layout_hex, fingerprint), &encode_cone(data))
    }

    /// Loads the cone replay seed for a (cone layout digest, options
    /// fingerprint) pair; any bad file is a miss.
    pub fn load_cone(&mut self, layout_hex: &str, fingerprint: u64) -> Option<ConeData> {
        let bytes = self.load(&cone_name(layout_hex, fingerprint))?;
        decode_cone(&bytes).ok()
    }

    // ------------------------------------------------------ inspection

    /// Lists every accounted file, sorted by name, classifying valid
    /// binary artifacts by kind.
    pub fn ls(&self) -> Vec<StoreEntry> {
        let mut out: Vec<StoreEntry> = self
            .files
            .iter()
            .map(|(name, info)| {
                let kind = if name.ends_with(".mctb") {
                    fs::read(self.dir.join(name))
                        .ok()
                        .and_then(|bytes| peek_kind(&bytes).ok())
                } else {
                    None
                };
                StoreEntry {
                    file: name.clone(),
                    kind,
                    bytes: info.len,
                }
            })
            .collect();
        out.sort_by(|a, b| a.file.cmp(&b.file));
        out
    }

    /// Garbage-collects the directory: removes binary artifacts that no
    /// longer decode (truncated, corrupt, or written by a different format
    /// version), then — when `max_bytes` is given — LRU-prunes the rest
    /// down to that budget.
    pub fn gc(&mut self, max_bytes: Option<u64>) -> GcOutcome {
        let mut outcome = GcOutcome::default();
        let names: Vec<String> = self.files.keys().cloned().collect();
        for name in names {
            if !name.ends_with(".mctb") {
                continue;
            }
            let valid = fs::read(self.dir.join(&name))
                .ok()
                .map(|bytes| match peek_kind(&bytes) {
                    Ok(ArtifactKind::Reach) => decode_reach(&bytes).is_ok(),
                    Ok(ArtifactKind::Order) => decode_order(&bytes).is_ok(),
                    Ok(ArtifactKind::Cone) => decode_cone(&bytes).is_ok(),
                    Err(_) => false,
                })
                .unwrap_or(false);
            if !valid {
                outcome.freed += self.remove(&name);
                outcome.removed += 1;
            }
        }
        if let Some(max) = max_bytes {
            while self.bytes > max {
                let victim = self
                    .files
                    .iter()
                    .min_by_key(|(name, info)| (info.last_use, name.as_str()))
                    .map(|(name, _)| name.clone());
                let Some(victim) = victim else { break };
                outcome.freed += self.remove(&victim);
                outcome.removed += 1;
            }
        }
        outcome
    }

    /// Removes every file whose name contains `digest` (a full or partial
    /// hex key). Returns the number of files removed.
    pub fn rm(&mut self, digest: &str) -> usize {
        if digest.is_empty() {
            return 0;
        }
        let victims: Vec<String> = self
            .files
            .keys()
            .filter(|name| name.contains(digest))
            .cloned()
            .collect();
        for name in &victims {
            self.remove(name);
        }
        victims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_tbf::TimedVar;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mct-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn order_of(n: usize) -> OrderData {
        OrderData {
            vars: (0..n).map(|leaf| TimedVar::Next { leaf }).collect(),
        }
    }

    #[test]
    fn save_load_round_trip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let mut store = Store::open(&dir, None).unwrap();
        let data = order_of(4);
        assert!(store.save_order("00ff", &data).unwrap());
        assert_eq!(store.load_order("00ff"), Some(data.clone()));
        assert_eq!(store.load_order("beef"), None);
        let expected = store.bytes_in_use();
        drop(store);
        // Reopen: the scan must rebuild the byte account.
        let mut store = Store::open(&dir, None).unwrap();
        assert_eq!(store.bytes_in_use(), expected);
        assert_eq!(store.load_order("00ff"), Some(data));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_keeps_directory_under_budget() {
        let dir = tmpdir("lru");
        let one = encode_order(&order_of(4));
        let budget = one.len() as u64 * 2;
        let mut store = Store::open(&dir, Some(budget)).unwrap();
        assert!(store.save_order("aa", &order_of(4)).unwrap());
        assert!(store.save_order("bb", &order_of(4)).unwrap());
        // Touch "aa" so "bb" is the LRU victim.
        assert!(store.load_order("aa").is_some());
        assert!(store.save_order("cc", &order_of(4)).unwrap());
        assert!(store.bytes_in_use() <= budget);
        assert_eq!(store.evictions(), 1);
        assert!(store.load_order("bb").is_none(), "LRU file evicted");
        assert!(store.load_order("aa").is_some(), "recently used survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_artifact_bypasses_admission() {
        let dir = tmpdir("oversize");
        let mut store = Store::open(&dir, Some(8)).unwrap();
        assert!(!store.save_order("aa", &order_of(64)).unwrap());
        assert_eq!(store.bytes_in_use(), 0);
        assert_eq!(store.num_files(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_corrupt_and_prunes() {
        let dir = tmpdir("gc");
        let mut store = Store::open(&dir, None).unwrap();
        store.save_order("aa", &order_of(2)).unwrap();
        store.save_order("bb", &order_of(2)).unwrap();
        store.save("order-cc.mctb", b"garbage").unwrap();
        drop(store);
        let mut store = Store::open(&dir, None).unwrap();
        assert_eq!(store.num_files(), 3);
        let outcome = store.gc(None);
        assert_eq!(outcome.removed, 1, "only the corrupt file goes");
        assert_eq!(store.num_files(), 2);
        let outcome = store.gc(Some(0));
        assert_eq!(outcome.removed, 2);
        assert_eq!(store.bytes_in_use(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rm_by_digest_substring() {
        let dir = tmpdir("rm");
        let mut store = Store::open(&dir, None).unwrap();
        store.save_order("deadbeef", &order_of(1)).unwrap();
        store.save_reach("deadbeef", &sample_reach()).unwrap();
        store.save_order("cafe", &order_of(1)).unwrap();
        assert_eq!(store.rm("deadbeef"), 2);
        assert_eq!(store.rm(""), 0);
        assert_eq!(store.num_files(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ls_classifies() {
        let dir = tmpdir("ls");
        let mut store = Store::open(&dir, None).unwrap();
        store.save_order("aa", &order_of(1)).unwrap();
        store.save_reach("bb", &sample_reach()).unwrap();
        store.save("cc.json", b"{}").unwrap();
        let entries = store.ls();
        assert_eq!(entries.len(), 3);
        let kind_of = |file: &str| {
            entries
                .iter()
                .find(|e| e.file == file)
                .map(|e| e.kind)
                .unwrap()
        };
        assert_eq!(kind_of("order-aa.mctb"), Some(ArtifactKind::Order));
        assert_eq!(kind_of("reach-bb.mctb"), Some(ArtifactKind::Reach));
        assert_eq!(kind_of("cc.json"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    fn sample_reach() -> ReachData {
        ReachData {
            vars: vec![TimedVar::Shifted { leaf: 0, shift: 0 }],
            snapshot: mct_bdd::BddSnapshot {
                num_vars: 1,
                order: vec![0],
                nodes: vec![mct_bdd::SnapshotNode {
                    var: 0,
                    lo: -1,
                    hi: 1,
                }],
                roots: vec![2],
            },
            states: 1.0,
        }
    }
}
