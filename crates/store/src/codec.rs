//! The binary artifact codec.
//!
//! Layout (all integers little-endian, fixed width):
//!
//! ```text
//! header   := magic "MCTB" | version u16 | kind u8 | flags u8
//! payload  := reach | order | cone            (selected by kind)
//!
//! reach    := tvars | snapshot | states f64bits
//! order    := tvars
//! cone     := tvars | snapshot | tail u64 | period u64 | has_reach u8
//!           | cx_count u32  { sub | m i64 | outcome }*
//!           | ex_count u32  { sub | m_state i64 | m_input i64
//!                           | fix u8 [ outcome | bad u8 [iter u64] ] }*
//!
//! tvars    := count u32 { tag u8 | leaf u64 | aux i64 }*
//! snapshot := num_vars u32 | order u32*num_vars
//!           | node_count u64 { var u32 | lo i64 | hi i64 }*
//!           | root_count u32 | root i64 *
//! sub      := count u32 | i64*count
//! outcome  := kind_len u16 | kind bytes | cyc u8 [i64] | idx u8 [u64]
//! ```
//!
//! Snapshot node references are signed: `+1`/`-1` are TRUE/FALSE, node *i*
//! is `±(i+2)`, negative means a complemented edge; nodes appear children
//! first (the topological order [`mct_bdd::BddManager::export_bdd`]
//! emits). The `flags` bit 0 records that the producer uses complement
//! edges — always set by this writer, required by this reader.
//!
//! Every decode path is bounds-checked and every declared length is
//! validated against the bytes actually remaining, so hostile input costs
//! at most one pass over the file and never a panic or an outsized
//! allocation.

use mct_bdd::{BddSnapshot, SnapshotNode};
use mct_core::{ConeData, ExactPartData, OrderData, OutcomeData, ReachData};
use mct_tbf::TimedVar;
use std::fmt;

/// File magic, first four bytes of every artifact.
pub const MAGIC: &[u8; 4] = b"MCTB";
/// Current on-disk format version.
pub const FORMAT_VERSION: u16 = 1;
/// Flags bit 0: the node list uses complement (signed) edges.
const FLAG_COMPLEMENT_EDGES: u8 = 1;

/// Artifact kind tag carried in the header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ArtifactKind {
    /// A [`ReachData`] reachable-state snapshot.
    Reach = 1,
    /// An [`OrderData`] learned variable order.
    Order = 2,
    /// A [`ConeData`] cone replay seed.
    Cone = 3,
}

impl ArtifactKind {
    fn from_u8(v: u8) -> Option<ArtifactKind> {
        match v {
            1 => Some(ArtifactKind::Reach),
            2 => Some(ArtifactKind::Order),
            3 => Some(ArtifactKind::Cone),
            _ => None,
        }
    }
}

/// Why a store file failed to decode. Callers treat every variant as a
/// cache miss; the variants exist so logs can say *which* way a file was
/// bad.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The buffer ended before a read completed.
    Truncated {
        /// Byte offset of the failed read.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The header names a format version this reader does not speak.
    UnsupportedVersion {
        /// The version found.
        got: u16,
    },
    /// The header names a different artifact kind than requested.
    WrongKind {
        /// The kind the caller asked to decode.
        expected: ArtifactKind,
        /// The kind tag found (raw, possibly unknown).
        got: u8,
    },
    /// The header flags are incompatible (complement edges required).
    BadFlags {
        /// The flags byte found.
        got: u8,
    },
    /// A structurally invalid payload (bad tag, impossible length, …).
    Malformed(&'static str),
    /// Trailing bytes after a complete payload.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { offset, needed } => {
                write!(f, "truncated: needed {needed} bytes at offset {offset}")
            }
            StoreError::BadMagic => write!(f, "bad magic (not an mct artifact file)"),
            StoreError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported format version {got} (reader speaks {FORMAT_VERSION})"
                )
            }
            StoreError::WrongKind { expected, got } => {
                write!(f, "artifact kind {got} where {expected:?} was expected")
            }
            StoreError::BadFlags { got } => {
                write!(f, "incompatible flags {got:#x} (complement edges required)")
            }
            StoreError::Malformed(what) => write!(f, "malformed payload: {what}"),
            StoreError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for StoreError {}

// ---------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: ArtifactKind) -> Writer {
        let mut w = Writer {
            buf: Vec::with_capacity(256),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u16(FORMAT_VERSION);
        w.u8(kind as u8);
        w.u8(FLAG_COMPLEMENT_EDGES);
        w
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn timed_var(&mut self, tv: TimedVar) {
        let (tag, leaf, aux) = match tv {
            TimedVar::Shifted { leaf, shift } => (0u8, leaf, shift),
            TimedVar::Absolute { leaf, cycle } => (1, leaf, cycle),
            TimedVar::Next { leaf } => (2, leaf, 0),
            TimedVar::Old { leaf } => (3, leaf, 0),
            TimedVar::Arbitrary { leaf, delay } => (4, leaf, delay),
            TimedVar::Primed { leaf, depth } => (5, leaf, depth),
        };
        self.u8(tag);
        self.u64(leaf as u64);
        self.i64(aux);
    }

    fn timed_vars(&mut self, tvs: &[TimedVar]) {
        self.u32(tvs.len() as u32);
        for &tv in tvs {
            self.timed_var(tv);
        }
    }

    fn snapshot(&mut self, s: &BddSnapshot) {
        self.u32(s.num_vars);
        for &v in &s.order {
            self.u32(v);
        }
        self.u64(s.nodes.len() as u64);
        for n in &s.nodes {
            self.u32(n.var);
            self.i64(n.lo);
            self.i64(n.hi);
        }
        self.u32(s.roots.len() as u32);
        for &r in &s.roots {
            self.i64(r);
        }
    }

    fn sub(&mut self, sub: &[i64]) {
        self.u32(sub.len() as u32);
        for &v in sub {
            self.i64(v);
        }
    }

    fn outcome(&mut self, o: &OutcomeData) {
        self.u16(o.kind.len() as u16);
        self.buf.extend_from_slice(o.kind.as_bytes());
        match o.cycle {
            Some(c) => {
                self.u8(1);
                self.i64(c);
            }
            None => self.u8(0),
        }
        match o.index {
            Some(i) => {
                self.u8(1);
                self.u64(i as u64);
            }
            None => self.u8(0),
        }
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type R<T> = Result<T, StoreError>;

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: n,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> R<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> R<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> R<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> R<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> R<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> R<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a declared element count and rejects it immediately when even
    /// minimum-sized elements could not fit in the remaining bytes — a
    /// hostile length never provokes an outsized allocation.
    fn len(&mut self, count: u64, elem_min: usize) -> R<usize> {
        let count = usize::try_from(count).map_err(|_| StoreError::Malformed("length"))?;
        if count
            .checked_mul(elem_min)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: count.saturating_mul(elem_min),
            });
        }
        Ok(count)
    }

    fn timed_var(&mut self) -> R<TimedVar> {
        let tag = self.u8()?;
        let leaf = usize::try_from(self.u64()?).map_err(|_| StoreError::Malformed("leaf"))?;
        let aux = self.i64()?;
        Ok(match tag {
            0 => TimedVar::Shifted { leaf, shift: aux },
            1 => TimedVar::Absolute { leaf, cycle: aux },
            2 => TimedVar::Next { leaf },
            3 => TimedVar::Old { leaf },
            4 => TimedVar::Arbitrary { leaf, delay: aux },
            5 => TimedVar::Primed { leaf, depth: aux },
            _ => return Err(StoreError::Malformed("timed-var tag")),
        })
    }

    fn timed_vars(&mut self) -> R<Vec<TimedVar>> {
        let count = self.u32()?;
        let count = self.len(count as u64, 17)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.timed_var()?);
        }
        Ok(out)
    }

    fn snapshot(&mut self) -> R<BddSnapshot> {
        let num_vars = self.u32()?;
        let order_len = self.len(num_vars as u64, 4)?;
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(self.u32()?);
        }
        let node_count = self.u64()?;
        let node_count = self.len(node_count, 20)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(SnapshotNode {
                var: self.u32()?,
                lo: self.i64()?,
                hi: self.i64()?,
            });
        }
        let root_count = self.u32()?;
        let root_count = self.len(root_count as u64, 8)?;
        let mut roots = Vec::with_capacity(root_count);
        for _ in 0..root_count {
            roots.push(self.i64()?);
        }
        Ok(BddSnapshot {
            num_vars,
            order,
            nodes,
            roots,
        })
    }

    fn sub(&mut self) -> R<Vec<i64>> {
        let count = self.u32()?;
        let count = self.len(count as u64, 8)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.i64()?);
        }
        Ok(out)
    }

    fn outcome(&mut self) -> R<OutcomeData> {
        let kind_len = self.u16()? as usize;
        let kind = std::str::from_utf8(self.take(kind_len)?)
            .map_err(|_| StoreError::Malformed("outcome kind utf8"))?
            .to_owned();
        let cycle = match self.u8()? {
            0 => None,
            1 => Some(self.i64()?),
            _ => return Err(StoreError::Malformed("cycle flag")),
        };
        let index = match self.u8()? {
            0 => None,
            1 => Some(
                usize::try_from(self.u64()?).map_err(|_| StoreError::Malformed("outcome index"))?,
            ),
            _ => return Err(StoreError::Malformed("index flag")),
        };
        Ok(OutcomeData { kind, cycle, index })
    }

    fn finish(self) -> R<()> {
        if self.remaining() != 0 {
            return Err(StoreError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn read_header(r: &mut Reader<'_>, expected: ArtifactKind) -> R<()> {
    if r.take(4)? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { got: version });
    }
    let kind = r.u8()?;
    if ArtifactKind::from_u8(kind) != Some(expected) {
        return Err(StoreError::WrongKind {
            expected,
            got: kind,
        });
    }
    let flags = r.u8()?;
    if flags & FLAG_COMPLEMENT_EDGES == 0 {
        return Err(StoreError::BadFlags { got: flags });
    }
    Ok(())
}

/// Reads just the header of an encoded artifact and returns its kind.
/// Used by offline inspection (`mct cache ls`) to classify files without
/// decoding payloads.
pub fn peek_kind(bytes: &[u8]) -> R<ArtifactKind> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { got: version });
    }
    let kind = r.u8()?;
    ArtifactKind::from_u8(kind).ok_or(StoreError::Malformed("artifact kind"))
}

// ---------------------------------------------------------------- public

/// Encodes a reachable-state snapshot.
pub fn encode_reach(data: &ReachData) -> Vec<u8> {
    let mut w = Writer::new(ArtifactKind::Reach);
    w.timed_vars(&data.vars);
    w.snapshot(&data.snapshot);
    w.f64(data.states);
    w.buf
}

/// Decodes a reachable-state snapshot.
///
/// # Errors
///
/// [`StoreError`] on any malformed, truncated, or mis-versioned input.
pub fn decode_reach(bytes: &[u8]) -> R<ReachData> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, ArtifactKind::Reach)?;
    let vars = r.timed_vars()?;
    let snapshot = r.snapshot()?;
    let states = r.f64()?;
    r.finish()?;
    Ok(ReachData {
        vars,
        snapshot,
        states,
    })
}

/// Encodes a learned variable order.
pub fn encode_order(data: &OrderData) -> Vec<u8> {
    let mut w = Writer::new(ArtifactKind::Order);
    w.timed_vars(&data.vars);
    w.buf
}

/// Decodes a learned variable order.
///
/// # Errors
///
/// [`StoreError`] on any malformed, truncated, or mis-versioned input.
pub fn decode_order(bytes: &[u8]) -> R<OrderData> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, ArtifactKind::Order)?;
    let vars = r.timed_vars()?;
    r.finish()?;
    Ok(OrderData { vars })
}

/// Encodes a cone replay seed.
pub fn encode_cone(data: &ConeData) -> Vec<u8> {
    let mut w = Writer::new(ArtifactKind::Cone);
    w.timed_vars(&data.vars);
    w.snapshot(&data.snapshot);
    w.u64(data.tail);
    w.u64(data.period);
    w.u8(data.has_reach as u8);
    w.u32(data.outcomes_cx.len() as u32);
    for (sub, m, o) in &data.outcomes_cx {
        w.sub(sub);
        w.i64(*m);
        w.outcome(o);
    }
    w.u32(data.outcomes_exact.len() as u32);
    for (sub, part) in &data.outcomes_exact {
        w.sub(sub);
        w.i64(part.m_state);
        w.i64(part.m_input);
        match &part.fix {
            None => w.u8(0),
            Some((o, bad)) => {
                w.u8(1);
                w.outcome(o);
                match bad {
                    None => w.u8(0),
                    Some(it) => {
                        w.u8(1);
                        w.u64(*it);
                    }
                }
            }
        }
    }
    w.buf
}

/// Decodes a cone replay seed.
///
/// # Errors
///
/// [`StoreError`] on any malformed, truncated, or mis-versioned input.
pub fn decode_cone(bytes: &[u8]) -> R<ConeData> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, ArtifactKind::Cone)?;
    let vars = r.timed_vars()?;
    let snapshot = r.snapshot()?;
    let tail = r.u64()?;
    let period = r.u64()?;
    let has_reach = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(StoreError::Malformed("has_reach flag")),
    };
    let cx_count = r.u32()?;
    let cx_count = r.len(cx_count as u64, 16)?;
    let mut outcomes_cx = Vec::with_capacity(cx_count);
    for _ in 0..cx_count {
        let sub = r.sub()?;
        let m = r.i64()?;
        let o = r.outcome()?;
        outcomes_cx.push((sub, m, o));
    }
    let ex_count = r.u32()?;
    let ex_count = r.len(ex_count as u64, 21)?;
    let mut outcomes_exact = Vec::with_capacity(ex_count);
    for _ in 0..ex_count {
        let sub = r.sub()?;
        let m_state = r.i64()?;
        let m_input = r.i64()?;
        let fix = match r.u8()? {
            0 => None,
            1 => {
                let o = r.outcome()?;
                let bad = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return Err(StoreError::Malformed("bad-iteration flag")),
                };
                Some((o, bad))
            }
            _ => return Err(StoreError::Malformed("fix flag")),
        };
        outcomes_exact.push((
            sub,
            ExactPartData {
                m_state,
                m_input,
                fix,
            },
        ));
    }
    r.finish()?;
    Ok(ConeData {
        vars,
        snapshot,
        tail,
        period,
        has_reach,
        outcomes_cx,
        outcomes_exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reach() -> ReachData {
        ReachData {
            vars: vec![
                TimedVar::Shifted { leaf: 0, shift: 0 },
                TimedVar::Next { leaf: 0 },
                TimedVar::Shifted { leaf: 1, shift: 0 },
            ],
            snapshot: BddSnapshot {
                num_vars: 3,
                order: vec![0, 1, 2],
                nodes: vec![
                    SnapshotNode {
                        var: 2,
                        lo: -1,
                        hi: 1,
                    },
                    SnapshotNode {
                        var: 0,
                        lo: -2,
                        hi: 2,
                    },
                ],
                roots: vec![-3],
            },
            states: 2.0,
        }
    }

    #[test]
    fn reach_round_trip() {
        let data = sample_reach();
        let bytes = encode_reach(&data);
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(peek_kind(&bytes).unwrap(), ArtifactKind::Reach);
        assert_eq!(decode_reach(&bytes).unwrap(), data);
    }

    #[test]
    fn order_round_trip() {
        let data = OrderData {
            vars: vec![
                TimedVar::Old { leaf: 5 },
                TimedVar::Arbitrary { leaf: 2, delay: -7 },
                TimedVar::Primed { leaf: 1, depth: 3 },
                TimedVar::Absolute { leaf: 0, cycle: -1 },
            ],
        };
        let bytes = encode_order(&data);
        assert_eq!(decode_order(&bytes).unwrap(), data);
    }

    #[test]
    fn cone_round_trip() {
        let data = ConeData {
            vars: vec![TimedVar::Shifted { leaf: 0, shift: 0 }],
            snapshot: BddSnapshot {
                num_vars: 1,
                order: vec![0],
                nodes: vec![SnapshotNode {
                    var: 0,
                    lo: -1,
                    hi: 1,
                }],
                roots: vec![2, -2],
            },
            tail: 1,
            period: 1,
            has_reach: true,
            outcomes_cx: vec![(
                vec![3, -4],
                2,
                OutcomeData {
                    kind: "basis_state".into(),
                    cycle: Some(2),
                    index: Some(0),
                },
            )],
            outcomes_exact: vec![(
                vec![3],
                ExactPartData {
                    m_state: 2,
                    m_input: 1,
                    fix: Some((
                        OutcomeData {
                            kind: "valid".into(),
                            cycle: None,
                            index: None,
                        },
                        Some(4),
                    )),
                },
            )],
        };
        let bytes = encode_cone(&data);
        assert_eq!(decode_cone(&bytes).unwrap(), data);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_reach(&sample_reach()), encode_reach(&sample_reach()));
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = encode_cone(&ConeData {
            vars: vec![TimedVar::Next { leaf: 0 }],
            snapshot: BddSnapshot {
                num_vars: 1,
                order: vec![0],
                nodes: vec![SnapshotNode {
                    var: 0,
                    lo: -1,
                    hi: 1,
                }],
                roots: vec![2],
            },
            tail: 0,
            period: 1,
            has_reach: false,
            outcomes_cx: Vec::new(),
            outcomes_exact: Vec::new(),
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_cone(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn header_violations() {
        let good = encode_order(&OrderData { vars: Vec::new() });
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_order(&bad).unwrap_err(), StoreError::BadMagic);
        let mut bad = good.clone();
        bad[4] = 0xff;
        assert!(matches!(
            decode_order(&bad).unwrap_err(),
            StoreError::UnsupportedVersion { .. }
        ));
        let mut bad = good.clone();
        bad[6] = ArtifactKind::Reach as u8;
        assert!(matches!(
            decode_order(&bad).unwrap_err(),
            StoreError::WrongKind { .. }
        ));
        let mut bad = good.clone();
        bad[7] = 0;
        assert!(matches!(
            decode_order(&bad).unwrap_err(),
            StoreError::BadFlags { .. }
        ));
        let mut bad = good;
        bad.push(0);
        assert!(matches!(
            decode_order(&bad).unwrap_err(),
            StoreError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn hostile_length_does_not_allocate() {
        // Claim 2^32-1 timed vars in a tiny buffer: the length check must
        // reject before any allocation happens.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(ArtifactKind::Order as u8);
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_order(&bytes).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }
}
