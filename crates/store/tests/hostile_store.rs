//! Hostile-input tier for the store parser, mirroring the netlist crate's
//! `hostile_inputs.rs`: corrupted, truncated, and mis-versioned store
//! files must surface as cache misses (errors / `None`), never as panics,
//! hangs, or outsized allocations — and must never corrupt a live manager.

use mct_bdd::{BddManager, BddSnapshot, SnapshotNode, Var};
use mct_core::{OrderData, ReachData, ReachSnapshot};
use mct_store::{
    decode_cone, decode_order, decode_reach, encode_reach, ArtifactKind, Store, StoreError,
    FORMAT_VERSION, MAGIC,
};
use mct_tbf::TimedVar;
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mct-hostile-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn valid_reach() -> ReachData {
    ReachData {
        vars: vec![
            TimedVar::Shifted { leaf: 0, shift: 0 },
            TimedVar::Next { leaf: 0 },
        ],
        snapshot: BddSnapshot {
            num_vars: 2,
            order: vec![0, 1],
            nodes: vec![
                SnapshotNode {
                    var: 1,
                    lo: -1,
                    hi: 1,
                },
                SnapshotNode {
                    var: 0,
                    lo: 2,
                    hi: -2,
                },
            ],
            roots: vec![3],
        },
        states: 2.0,
    }
}

#[test]
fn zero_length_file_is_a_miss() {
    let dir = tmpdir("zero");
    let mut store = Store::open(&dir, None).unwrap();
    store.save("reach-00.mctb", b"").unwrap();
    assert_eq!(store.load_reach("00"), None);
    assert!(matches!(
        decode_reach(b"").unwrap_err(),
        StoreError::Truncated { .. }
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_is_a_miss() {
    let dir = tmpdir("magic");
    let mut store = Store::open(&dir, None).unwrap();
    let mut bytes = encode_reach(&valid_reach());
    bytes[..4].copy_from_slice(b"DDMP");
    store.save("reach-00.mctb", &bytes).unwrap();
    assert_eq!(store.load_reach("00"), None);
    assert_eq!(decode_reach(&bytes).unwrap_err(), StoreError::BadMagic);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn future_version_is_a_miss_not_a_guess() {
    let mut bytes = encode_reach(&valid_reach());
    bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert_eq!(
        decode_reach(&bytes).unwrap_err(),
        StoreError::UnsupportedVersion {
            got: FORMAT_VERSION + 1
        }
    );
}

#[test]
fn truncated_node_list_every_prefix() {
    let bytes = encode_reach(&valid_reach());
    for cut in 0..bytes.len() {
        assert!(
            decode_reach(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix decoded successfully"
        );
    }
}

#[test]
fn every_single_byte_flip_never_panics() {
    let bytes = encode_reach(&valid_reach());
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xff;
        // Any result is fine (some flips produce a different valid value);
        // what this asserts is "no panic, no hang" on every 1-byte corruption,
        // and that a *decoded* artifact still imports or errors cleanly.
        if let Ok(data) = decode_reach(&mutated) {
            let _ = ReachSnapshot::import_data(&data);
        }
    }
}

#[test]
fn dangling_node_refs_fail_import_not_decode() {
    // Structurally valid bytes whose node references point forward: the
    // codec accepts the shape, the manager-level import must reject it.
    let mut data = valid_reach();
    data.snapshot.nodes[0].lo = 3; // forward ref to node 1 from node 0
    let bytes = mct_store::encode_reach(&data);
    let decoded = decode_reach(&bytes).unwrap();
    assert!(ReachSnapshot::import_data(&decoded).is_err());
    // And via the raw manager API, with a pristine manager untouched.
    let mut m = BddManager::new();
    let map: Vec<Var> = (0..2).map(Var::new).collect();
    assert!(m.import_bdd(&decoded.snapshot, &map).is_err());
    assert_eq!(m.num_nodes(), 1);
}

#[test]
fn wrong_var_count_fails_import() {
    // The order says 2 vars but the timed-var vector names only 1: the
    // artifact importer must reject rather than index out of range.
    let mut data = valid_reach();
    data.vars.truncate(1);
    let bytes = mct_store::encode_reach(&data);
    let decoded = decode_reach(&bytes).unwrap();
    assert!(ReachSnapshot::import_data(&decoded).is_err());
}

#[test]
fn kind_confusion_is_rejected() {
    let reach_bytes = encode_reach(&valid_reach());
    assert!(matches!(
        decode_order(&reach_bytes).unwrap_err(),
        StoreError::WrongKind {
            expected: ArtifactKind::Order,
            ..
        }
    ));
    assert!(matches!(
        decode_cone(&reach_bytes).unwrap_err(),
        StoreError::WrongKind { .. }
    ));
}

#[test]
fn hostile_lengths_never_allocate_wildly() {
    // Declare 2^64-ish node counts in a 40-byte file; the decoder must
    // reject by arithmetic, not by attempting the allocation.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(1); // kind: reach
    bytes.push(1); // flags
    bytes.extend_from_slice(&0u32.to_le_bytes()); // no timed vars
    bytes.extend_from_slice(&0u32.to_le_bytes()); // snapshot num_vars = 0
    bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // node count: 2^64-1
    assert!(matches!(
        decode_reach(&bytes).unwrap_err(),
        StoreError::Truncated { .. } | StoreError::Malformed(_)
    ));
}

#[test]
fn corrupt_files_are_misses_and_gc_prunes_them() {
    let dir = tmpdir("gc-prune");
    let mut store = Store::open(&dir, None).unwrap();
    store.save_reach("good", &valid_reach()).unwrap();
    let mut corrupt = encode_reach(&valid_reach());
    corrupt.truncate(corrupt.len() / 2);
    store.save("reach-bad0.mctb", &corrupt).unwrap();
    store.save("reach-bad1.mctb", b"MCTB").unwrap();
    store.save("order-bad2.mctb", &[0xff; 64]).unwrap();

    assert!(store.load_reach("good").is_some());
    assert!(store.load_reach("bad0").is_none());
    assert!(store.load_reach("bad1").is_none());
    assert!(store.load_order("bad2").is_none());

    let outcome = store.gc(None);
    assert_eq!(outcome.removed, 3, "all three corrupt files pruned");
    assert!(store.load_reach("good").is_some(), "valid artifact kept");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deleted_store_directory_degrades_to_misses() {
    let dir = tmpdir("rmrf");
    let mut store = Store::open(&dir, None).unwrap();
    store.save_reach("aa", &valid_reach()).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    // Accounted but gone: loads miss, saves may error, nothing panics.
    assert!(store.load_reach("aa").is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_order_artifact_cannot_corrupt_an_analyzer() {
    // An order file with duplicate variables (e.g. written by a buggy or
    // malicious producer) must be rejected by the analyzer preload with a
    // structured error, leaving the analyzer usable.
    let dup = OrderData {
        vars: vec![TimedVar::Next { leaf: 0 }, TimedVar::Next { leaf: 0 }],
    };
    let bytes = mct_store::encode_order(&dup);
    let decoded = decode_order(&bytes).unwrap();
    use mct_netlist::{Circuit, GateKind, Time};
    let mut c = Circuit::new("t");
    let q = c.add_dff("q", false, Time::ZERO);
    let n = c.add_gate("n", GateKind::Not, &[q], Time::UNIT);
    c.connect_dff_data("q", n).unwrap();
    c.set_output(q);
    let mut analyzer = mct_core::MctAnalyzer::new(&c).unwrap();
    assert!(analyzer.preload_order(&decoded).is_err());
    // The analyzer still runs fine afterwards.
    let report = analyzer.run(&mct_core::MctOptions::default()).unwrap();
    assert!(report.mct_upper_bound > 0.0);
}
