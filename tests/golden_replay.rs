//! Golden replay: the analysis reports produced by the suite must stay
//! byte-identical across kernel rewrites. The golden file was captured on
//! the pre-complement-edge BDD kernel; any change to report *content*
//! (as opposed to internal handle values) is a regression.
//!
//! Regenerate with `MCT_BLESS=1 cargo test --test golden_replay` — but only
//! when a report change is intentional and called out in CHANGES.md.

use mct_serve::report::report_to_json;
use mct_suite::core::{MctAnalyzer, MctOptions, ReorderSchedule, SigmaStrategy, VarOrder};
use mct_suite::gen::families;
use mct_suite::netlist::{parse_bench, Circuit, DelayModel};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/data/golden_reports.tsv";
const SKEW_GOLDEN_PATH: &str = "tests/data/golden_skew_reports.tsv";

fn golden_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

fn skew_golden_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SKEW_GOLDEN_PATH)
}

/// Every circuit in the golden corpus: each `examples/*.bench` netlist plus
/// twenty seeded machines from the random family.
fn corpus() -> Vec<(String, Circuit, MctOptions)> {
    let mut out = Vec::new();
    let examples = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut benches: Vec<_> = std::fs::read_dir(&examples)
        .expect("examples dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bench"))
        .collect();
    benches.sort();
    for path in benches {
        let text = std::fs::read_to_string(&path).expect("read bench file");
        let circuit = parse_bench(&text, &DelayModel::Mapped).expect("parse bench file");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.push((name, circuit, MctOptions::paper()));
    }
    // Exact delays keep the σ enumeration small enough that every seed
    // completes (mirrors `parallel_determinism.rs`).
    for seed in 0..20u64 {
        let c = families::random_fsm(seed, 3 + (seed as usize % 3), seed as usize % 2, 10);
        out.push((format!("random_fsm/{seed}"), c, MctOptions::fixed_delays()));
    }
    out
}

/// A run that errors (budget caps) must error identically on every kernel,
/// so error text participates in the golden capture too.
fn report_line(circuit: &Circuit, threads: usize, ordering: VarOrder, base: &MctOptions) -> String {
    let opts = MctOptions {
        num_threads: threads,
        ordering,
        ..base.clone()
    };
    let outcome = MctAnalyzer::new(circuit)
        .expect("analyzable circuit")
        .run(&opts);
    match outcome {
        Ok(report) => report_to_json(&report).to_compact(),
        Err(e) => format!("error: {e}"),
    }
}

/// Reports must be identical at 1, 2, and 4 worker threads and under every
/// variable-ordering policy (ordering only changes node counts, never
/// results), and must match the golden capture from the previous kernel
/// byte for byte.
#[test]
fn reports_replay_byte_identical() {
    let mut rendered = String::new();
    for (name, circuit, opts) in corpus() {
        let base = report_line(&circuit, 1, VarOrder::Alloc, &opts);
        for ordering in [VarOrder::Alloc, VarOrder::Static, VarOrder::Sift] {
            for threads in [1usize, 2, 4] {
                if (ordering, threads) == (VarOrder::Alloc, 1) {
                    continue;
                }
                let got = report_line(&circuit, threads, ordering, &opts);
                assert_eq!(
                    base, got,
                    "{name}: report at {threads} threads / {ordering:?} ordering \
                     differs from the single-threaded alloc-order run"
                );
            }
        }
        writeln!(rendered, "{name}\t{base}").unwrap();
    }

    let path = golden_file();
    if std::env::var_os("MCT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run with MCT_BLESS=1 to capture");
    for (want, got) in golden.lines().zip(rendered.lines()) {
        let name = want.split('\t').next().unwrap_or("?");
        assert_eq!(want, got, "golden replay mismatch for {name}");
    }
    assert_eq!(
        golden.lines().count(),
        rendered.lines().count(),
        "golden corpus size changed"
    );
}

/// Every reorder schedule must replay the *existing* golden capture byte
/// for byte under sifting, across thread counts and both σ-enumeration
/// strategies. Deliberately never re-blessed: a schedule-only divergence
/// can never be blessed away.
#[test]
fn scheduled_reports_replay_byte_identical() {
    let golden = std::fs::read_to_string(golden_file())
        .expect("golden file missing; run reports_replay_byte_identical with MCT_BLESS=1 first");
    let golden: std::collections::HashMap<&str, &str> =
        golden.lines().filter_map(|l| l.split_once('\t')).collect();
    let schedules = [
        ReorderSchedule::GrowthRatio(1.5),
        ReorderSchedule::AlwaysOnce,
        ReorderSchedule::TimeBudget(20),
        ReorderSchedule::Adaptive,
    ];
    for (name, circuit, opts) in corpus() {
        let want = *golden
            .get(name.as_str())
            .expect("circuit missing from golden file");
        for schedule in schedules {
            for threads in [1usize, 2, 4] {
                for sigma in [SigmaStrategy::Flat, SigmaStrategy::Pruned] {
                    let run = MctOptions {
                        reorder_schedule: schedule,
                        sigma,
                        ..opts.clone()
                    };
                    let got = report_line(&circuit, threads, VarOrder::Sift, &run);
                    assert_eq!(
                        want, got,
                        "{name}: report under {schedule:?} schedule at {threads} threads \
                         with {sigma:?} σ differs from the golden capture"
                    );
                }
            }
        }
    }
}

/// Skew mode (`MctOptions::skew`) has its own golden capture — the skew
/// tier is a *semantic* extension (the report gains a `skew` section and
/// the cache fingerprint changes), so it gets its own file rather than a
/// re-bless of the base goldens, which must stay byte-identical to their
/// pre-skew capture. The skew-mode report must itself be byte-identical
/// across every ordering policy and thread count.
///
/// Regenerate with `MCT_BLESS=1 cargo test --test golden_replay`.
#[test]
fn skew_mode_reports_replay_byte_identical() {
    let mut rendered = String::new();
    for (name, circuit, opts) in corpus() {
        let skew_opts = MctOptions { skew: true, ..opts };
        let base = report_line(&circuit, 1, VarOrder::Alloc, &skew_opts);
        for ordering in [VarOrder::Alloc, VarOrder::Static, VarOrder::Sift] {
            for threads in [1usize, 2, 4] {
                if (ordering, threads) == (VarOrder::Alloc, 1) {
                    continue;
                }
                let got = report_line(&circuit, threads, ordering, &skew_opts);
                assert_eq!(
                    base, got,
                    "{name}: skew-mode report at {threads} threads / {ordering:?} \
                     ordering differs from the single-threaded alloc-order run"
                );
            }
        }
        writeln!(rendered, "{name}\t{base}").unwrap();
    }

    let path = skew_golden_file();
    if std::env::var_os("MCT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).expect("write skew golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("skew golden file missing; run with MCT_BLESS=1 to capture");
    for (want, got) in golden.lines().zip(rendered.lines()) {
        let name = want.split('\t').next().unwrap_or("?");
        assert_eq!(want, got, "skew golden replay mismatch for {name}");
    }
    assert_eq!(
        golden.lines().count(),
        rendered.lines().count(),
        "skew golden corpus size changed"
    );
}

/// The cone-decomposed path must reproduce the same golden capture byte
/// for byte — decomposition is an execution strategy, not a semantic
/// change — under every ordering policy and thread count. Deliberately
/// replays against the *existing* golden file: a decomposed-only
/// divergence can never be blessed away.
#[test]
fn decomposed_reports_replay_byte_identical() {
    let golden = std::fs::read_to_string(golden_file())
        .expect("golden file missing; run reports_replay_byte_identical with MCT_BLESS=1 first");
    let golden: std::collections::HashMap<&str, &str> =
        golden.lines().filter_map(|l| l.split_once('\t')).collect();
    for (name, circuit, opts) in corpus() {
        let want = *golden
            .get(name.as_str())
            .expect("circuit missing from golden file");
        let base = MctOptions {
            decompose: true,
            ..opts
        };
        for ordering in [VarOrder::Alloc, VarOrder::Static, VarOrder::Sift] {
            for threads in [1usize, 2, 4] {
                let got = report_line(&circuit, threads, ordering, &base);
                assert_eq!(
                    want, got,
                    "{name}: decomposed report at {threads} threads / {ordering:?} \
                     ordering differs from the golden monolithic capture"
                );
            }
        }
    }
}
