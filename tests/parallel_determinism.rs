//! The parallel sweep must be *bit-identical* to the sequential one: same
//! exact rational bound, same regions, same first-failure diagnostics, and
//! the same σ counters — on the paper's worked example and on a population
//! of random machines, at several thread counts.

use mct_suite::core::{MctAnalyzer, MctOptions, MctReport};
use mct_suite::gen::{families, paper_figure2};
use mct_suite::netlist::Circuit;

fn try_run(c: &Circuit, threads: usize, base: &MctOptions) -> Result<MctReport, String> {
    let opts = MctOptions {
        num_threads: threads,
        ..base.clone()
    };
    MctAnalyzer::new(c)
        .unwrap_or_else(|e| panic!("{}: {e}", c.name()))
        .run(&opts)
        .map_err(|e| e.to_string())
}

fn run(c: &Circuit, threads: usize, base: &MctOptions) -> MctReport {
    try_run(c, threads, base).unwrap_or_else(|e| panic!("{}: {e}", c.name()))
}

fn assert_identical(name: &str, threads: usize, seq: &MctReport, par: &MctReport) {
    let ctx = format!("{name} at {threads} threads");
    assert_eq!(seq.bound_exact, par.bound_exact, "{ctx}: exact bound");
    assert_eq!(
        seq.mct_upper_bound.to_bits(),
        par.mct_upper_bound.to_bits(),
        "{ctx}: f64 bound"
    );
    assert_eq!(seq.steady_delay, par.steady_delay, "{ctx}: L");
    assert_eq!(
        seq.first_failing_tau, par.first_failing_tau,
        "{ctx}: first failure"
    );
    assert_eq!(seq.failure, par.failure, "{ctx}: diagnostics");
    assert_eq!(
        seq.candidates_checked, par.candidates_checked,
        "{ctx}: candidates"
    );
    assert_eq!(seq.sigma_checked, par.sigma_checked, "{ctx}: sigma count");
    assert_eq!(
        seq.sigma_cache_hits, par.sigma_cache_hits,
        "{ctx}: cache hits"
    );
    assert_eq!(seq.exhausted, par.exhausted, "{ctx}: exhausted");
    assert_eq!(seq.timed_out, par.timed_out, "{ctx}: timed_out");
    assert_eq!(
        seq.used_reachability, par.used_reachability,
        "{ctx}: reach flag"
    );
    assert_eq!(
        seq.reachable_states, par.reachable_states,
        "{ctx}: reach count"
    );
    assert_eq!(seq.regions, par.regions, "{ctx}: regions");
}

/// Example 2 of the paper, in every analysis mode, at 2/4/8 threads.
#[test]
fn figure2_identical_across_thread_counts() {
    let c = paper_figure2();
    let modes = [
        MctOptions::fixed_delays(),
        MctOptions::paper(),
        MctOptions {
            path_coupled_lp: true,
            ..MctOptions::paper()
        },
        MctOptions {
            exhaustive_floor: Some(1.0),
            ..MctOptions::paper()
        },
        MctOptions {
            use_reachability: false,
            ..MctOptions::fixed_delays()
        },
    ];
    for base in &modes {
        let seq = run(&c, 1, base);
        for threads in [2, 4, 8] {
            let par = run(&c, threads, base);
            assert_identical("fig2", threads, &seq, &par);
        }
    }
}

/// Twenty seeded random machines from the generator family: the parallel
/// sweep agrees exactly with the sequential one at 2 and 4 threads. Exact
/// delays keep the σ enumeration small enough that every seed completes;
/// a run that errors (budget caps) must error identically on every side.
#[test]
fn random_fsms_identical_across_thread_counts() {
    let base = MctOptions::fixed_delays();
    for seed in 0..20u64 {
        let c = families::random_fsm(seed, 3 + (seed as usize % 3), seed as usize % 2, 10);
        let seq = try_run(&c, 1, &base);
        for threads in [2, 4] {
            let par = try_run(&c, threads, &base);
            match (&seq, &par) {
                (Ok(s), Ok(p)) => assert_identical(c.name(), threads, s, p),
                (Err(s), Err(p)) => assert_eq!(s, p, "{}: error text", c.name()),
                _ => panic!(
                    "{} at {threads} threads: one side errored, the other did not",
                    c.name()
                ),
            }
        }
    }
}

/// The structured families with planted slack mechanisms (where failures
/// genuinely occur at interesting periods) also reconcile exactly.
#[test]
fn planted_slack_families_identical() {
    use mct_suite::netlist::Time;
    let t = Time::from_f64;
    let circuits = vec![
        families::periodic_slack(t(1.5), t(4.0), t(5.0), 3),
        families::unreachable_slack(4, t(2.0), t(8.0)),
        families::comb_false_path(t(1.0), t(6.0), 3),
        families::deep_false_path(),
        families::binary_counter(4, t(0.5)),
    ];
    for c in &circuits {
        let seq = run(c, 1, &MctOptions::paper());
        for threads in [2, 4] {
            let par = run(c, threads, &MctOptions::paper());
            assert_identical(c.name(), threads, &seq, &par);
        }
    }
}
