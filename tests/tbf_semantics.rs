//! The deepest cross-check in the suite: the *denotational* semantics of
//! the flattened Timed Boolean Function (Example 1's two-level form,
//! evaluated over waveforms) agrees with the *operational* semantics of the
//! event-driven transport simulator, instant for instant, on random
//! sequential circuits.
//!
//! This ties all three views of the paper's formalism together: netlist →
//! TBF expression (`circuit_tbf`) → waveform evaluation must equal what the
//! gate-level event simulation actually does.

use mct_prng::SmallRng;
use mct_suite::gen::paper_figure2;
use mct_suite::netlist::{Circuit, FsmView, GateKind, NetId, Time};
use mct_suite::sim::{NetWave, SimConfig, Simulator};
use mct_suite::tbf::circuit_tbf;

fn wave_value(w: &NetWave, t: Time) -> bool {
    let mut v = w.initial;
    for &(tt, nv) in &w.transitions {
        if tt <= t {
            v = nv;
        } else {
            break;
        }
    }
    v
}

#[derive(Clone, Debug)]
struct Recipe {
    state_bits: usize,
    input_bits: usize,
    gates: Vec<(u8, u8, u8, u8)>,
}

fn random_recipe(rng: &mut SmallRng) -> Recipe {
    let state_bits = rng.gen_range(1..3usize);
    let input_bits = rng.gen_range(0..3usize);
    let ngates = rng.gen_range(1..8usize);
    let gates = (0..ngates)
        .map(|_| {
            (
                rng.gen_range(0..8u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(1..5u8),
            )
        })
        .collect();
    Recipe {
        state_bits,
        input_bits,
        gates,
    }
}

fn build(recipe: &Recipe) -> Circuit {
    let mut c = Circuit::new("sem");
    let mut nets: Vec<NetId> = Vec::new();
    for i in 0..recipe.input_bits {
        nets.push(c.add_input(format!("in{i}")));
    }
    for i in 0..recipe.state_bits {
        nets.push(c.add_dff(format!("q{i}"), i % 2 == 1, Time::ZERO));
    }
    for (gi, &(ks, a, b, d)) in recipe.gates.iter().enumerate() {
        let kind = GateKind::ALL[ks as usize % GateKind::ALL.len()];
        let x = nets[a as usize % nets.len()];
        let inputs: Vec<NetId> = if kind.max_inputs() == Some(1) {
            vec![x]
        } else {
            vec![x, nets[b as usize % nets.len()]]
        };
        nets.push(c.add_gate(
            format!("g{gi}"),
            kind,
            &inputs,
            Time::from_millis(d as i64 * 800),
        ));
    }
    for i in 0..recipe.state_bits {
        c.connect_dff_data(&format!("q{i}"), *nets.last().unwrap())
            .unwrap();
    }
    c.set_output(*nets.last().unwrap());
    c
}

#[test]
fn flattened_tbf_matches_event_simulation() {
    let mut rng = SmallRng::seed_from_u64(50);
    for _ in 0..40 {
        let recipe = random_recipe(&mut rng);
        let seed = rng.gen_range(0..16u64);
        let circuit = build(&recipe);
        let view = FsmView::new(&circuit).unwrap();
        let sinks: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
        // Flatten every sink cone; skip pathological reconvergence.
        let mut tbfs = Vec::new();
        let mut skip = false;
        for &sink in &sinks {
            match circuit_tbf(&view, sink, 50_000) {
                Ok(t) => tbfs.push((sink, t)),
                Err(_) => {
                    skip = true;
                    break;
                }
            }
        }
        if skip {
            continue;
        }
        // Simulate at a comfortable period with maximum delays (the TBF's
        // delay model).
        let period = Time::from_millis(20_000);
        let sim = Simulator::new(&circuit).unwrap();
        let ins = move |cycle: usize, i: usize| (cycle * 7 + i * 3 + seed as usize) % 5 < 2;
        let (_, waves) = sim.run_recording(&SimConfig::at_period(period).with_cycles(6), ins);

        // Evaluate each sink's TBF at a grid of instants and compare with
        // the recorded waveform of the sink net.
        let leaves = view.leaves();
        let read_leaf = |leaf: usize, at: Time| {
            let net = leaves[leaf];
            wave_value(&waves[net.index()], at)
        };
        for (sink, tbf) in &tbfs {
            let sink_wave = &waves[sink.index()];
            // Probe between edges 2 and 5 (past start-up), every 0.4 units.
            for step in 0..150i64 {
                let t = Time::from_millis(2 * 20_000 + step * 400);
                let expect = wave_value(sink_wave, t);
                let got = tbf.eval(t, period, &|leaf, at| read_leaf(leaf, at));
                assert_eq!(
                    got,
                    expect,
                    "sink {} at t = {}: TBF {} vs simulator {}",
                    circuit.net_name(*sink),
                    t,
                    got,
                    expect
                );
            }
        }
    }
}

/// The same agreement on the paper's own circuit, deterministically, at an
/// aggressive sub-topological period (4 < topological 5) where the waveform
/// is genuinely multi-wave.
#[test]
fn figure2_tbf_matches_simulation_at_period_4() {
    let circuit = paper_figure2();
    let view = FsmView::new(&circuit).unwrap();
    let g = circuit.lookup("g").unwrap();
    let tbf = circuit_tbf(&view, g, 10_000).unwrap();
    let period = Time::from_f64(4.0);
    let sim = Simulator::new(&circuit).unwrap();
    let (_, waves) = sim.run_recording(&SimConfig::at_period(period).with_cycles(8), |_, _| false);
    let f_net = circuit.lookup("f").unwrap();
    let read = |_: usize, at: Time| wave_value(&waves[f_net.index()], at);
    let g_wave = &waves[g.index()];
    // Probe densely through cycles 2..7.
    for step in 0..400i64 {
        let t = Time::from_millis(8_000 + step * 50);
        assert_eq!(
            tbf.eval(t, period, &read),
            wave_value(g_wave, t),
            "divergence at t = {t}"
        );
    }
}
