//! The paper's Theorems 1 and 2, checked statically and dynamically across
//! the benchmark suite.

use mct_suite::bdd::BddManager;
use mct_suite::delay::{
    floating_delay, shortest_path_delay, theorem1_bound, theorem2_applicable, topological_delay,
    transition_delay,
};
use mct_suite::gen::{paper_figure2, standard_suite};
use mct_suite::netlist::{FsmView, Time};
use mct_suite::sim::{functional_trace, DelayMode, SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

/// Theorem 1: clocking any suite circuit at `floating + setup` must be
/// dynamically correct whenever the shortest path covers the hold time.
#[test]
fn theorem1_bound_is_dynamically_safe() {
    let setup = Time::from_f64(0.2);
    let hold = Time::from_f64(0.05);
    for entry in standard_suite() {
        let c = &entry.circuit;
        let view = FsmView::new(c).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let float = floating_delay(&view, &mut manager, &mut table).unwrap();
        let shortest = shortest_path_delay(&view).unwrap();
        let Some(bound) = theorem1_bound(float, shortest, setup, hold) else {
            continue; // hold window not covered: the theorem is silent
        };
        if bound <= Time::ZERO {
            continue;
        }
        let sim = Simulator::new(c).unwrap();
        let config = SimConfig::at_period(bound)
            .with_cycles(32)
            .with_setup_hold(setup, hold)
            .with_delay_mode(DelayMode::RandomUniform {
                min_factor_percent: 90,
                seed: 3,
            });
        let ins = |cycle: usize, i: usize| (cycle + i).is_multiple_of(3);
        let trace = sim.run(&config, ins);
        let (states, outputs) = functional_trace(c, 32, ins);
        assert!(
            trace.matches(&states, &outputs),
            "{}: Theorem-1 bound {} not dynamically safe",
            c.name(),
            bound
        );
        assert!(
            trace.violations.iter().all(|v| !v.is_setup),
            "{}: setup violation at the Theorem-1 bound",
            c.name()
        );
    }
}

/// Theorem 2 applies exactly when `transition ≥ topological / 2`; when it
/// does, clocking at the transition delay must be dynamically correct.
#[test]
fn theorem2_certified_bounds_are_safe() {
    for entry in standard_suite() {
        let c = &entry.circuit;
        let view = FsmView::new(c).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let trans = transition_delay(&view, &mut manager, &mut table).unwrap();
        let top = topological_delay(&view).unwrap();
        if !theorem2_applicable(trans, top) || trans <= Time::ZERO {
            continue;
        }
        // Certified bounds guarantee correctness strictly above them; probe
        // just past the bound to stay off the edge-coincident race.
        let period = trans + Time::from_millis(50);
        let sim = Simulator::new(c).unwrap();
        let config = SimConfig::at_period(period).with_cycles(32);
        let ins = |cycle: usize, i: usize| (cycle * 3 + i) % 4 == 1;
        let trace = sim.run(&config, ins);
        let (states, outputs) = functional_trace(c, 32, ins);
        assert!(
            trace.matches(&states, &outputs),
            "{}: certified 2-vector bound {} not dynamically safe",
            c.name(),
            trans
        );
    }
}

/// The paper's counterexample: Figure 2's 2-vector delay (2) is below half
/// its topological delay (5), Theorem 2 does not apply — and the bound is
/// genuinely wrong.
#[test]
fn theorem2_counterexample_is_figure2() {
    let c = paper_figure2();
    let view = FsmView::new(&c).unwrap();
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();
    let trans = transition_delay(&view, &mut manager, &mut table).unwrap();
    let top = topological_delay(&view).unwrap();
    assert!(!theorem2_applicable(trans, top));
    let sim = Simulator::new(&c).unwrap();
    let trace = sim.run(&SimConfig::at_period(trans).with_cycles(24), |_, _| false);
    let (states, _) = functional_trace(&c, 24, |_, _| false);
    assert!(trace.first_divergence(&states).is_some());
}

/// The floating delay equals the "delay by sequences of vectors" in the
/// sense relevant here: it never under-approximates the settling the
/// simulator observes at max delays.
#[test]
fn floating_delay_covers_observed_settling() {
    for entry in standard_suite().into_iter().take(8) {
        let c = &entry.circuit;
        let view = FsmView::new(c).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let float = floating_delay(&view, &mut manager, &mut table).unwrap();
        // Clock far above the floating delay: always correct.
        let period = float + Time::UNIT;
        if period <= Time::UNIT {
            continue;
        }
        let sim = Simulator::new(c).unwrap();
        let ins = |cycle: usize, i: usize| (cycle ^ i).is_multiple_of(2);
        let trace = sim.run(&SimConfig::at_period(period).with_cycles(24), ins);
        let (states, outputs) = functional_trace(c, 24, ins);
        assert!(trace.matches(&states, &outputs), "{}", c.name());
    }
}
