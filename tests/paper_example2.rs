//! End-to-end reproduction of the paper's worked Example 2 (Figure 2):
//! every number the paper states, verified across all engines.

use mct_suite::bdd::BddManager;
use mct_suite::core::{DecisionOutcome, MctAnalyzer, MctOptions};
use mct_suite::delay;
use mct_suite::gen::{paper_figure2, paper_figure2_comb_output};
use mct_suite::netlist::{FsmView, Time};
use mct_suite::sim::{functional_trace, SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

#[test]
fn all_four_metrics_match_the_paper() {
    let circuit = paper_figure2();
    let view = FsmView::new(&circuit).unwrap();
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();
    let metrics = delay::compute_all(&view, &mut manager, &mut table).unwrap();
    assert_eq!(metrics.topological, Time::from_f64(5.0));
    assert_eq!(metrics.floating, Time::from_f64(4.0));
    assert_eq!(metrics.transition, Time::from_f64(2.0));

    let report = MctAnalyzer::new(&circuit)
        .unwrap()
        .run(&MctOptions::fixed_delays())
        .unwrap();
    assert!((report.mct_upper_bound - 2.5).abs() < 1e-9);
    assert_eq!(report.steady_delay, 5.0);
}

#[test]
fn comb_output_variant_gives_same_delays() {
    // Exposing g instead of f must not change the combinational metrics
    // (the next-state cone is the same logic).
    let circuit = paper_figure2_comb_output();
    let view = FsmView::new(&circuit).unwrap();
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();
    let metrics = delay::compute_all(&view, &mut manager, &mut table).unwrap();
    assert_eq!(metrics.topological, Time::from_f64(5.0));
    assert_eq!(metrics.floating, Time::from_f64(4.0));
    assert_eq!(metrics.transition, Time::from_f64(2.0));
}

#[test]
fn paper_candidate_sequence_validity() {
    // The paper examines τ = 4, 2.5, 2, 5/3: valid, valid, invalid.
    let circuit = paper_figure2();
    let report = MctAnalyzer::new(&circuit)
        .unwrap()
        .run(&MctOptions {
            exhaustive_floor: Some(1.5),
            ..MctOptions::fixed_delays()
        })
        .unwrap();
    let valid_at = |tau: f64| {
        report
            .regions
            .iter()
            .find(|r| tau >= r.tau_lo && tau < r.tau_hi)
            .unwrap_or_else(|| panic!("no region covers {tau}"))
            .valid
    };
    assert!(valid_at(4.0));
    assert!(valid_at(2.5));
    assert!(valid_at(3.0));
    assert!(!valid_at(2.0));
    assert!(!valid_at(2.2));
    assert!(!valid_at(1.7));
}

#[test]
fn divergence_is_a_basis_startup_effect() {
    // The paper's Example 2 has no inputs: the failure at τ = 2 shows up
    // when unrolling from the initial state.
    let circuit = paper_figure2();
    let report = MctAnalyzer::new(&circuit)
        .unwrap()
        .run(&MctOptions::fixed_delays())
        .unwrap();
    match report.failure {
        Some(
            DecisionOutcome::BasisStateMismatch { .. }
            | DecisionOutcome::BasisOutputMismatch { .. }
            | DecisionOutcome::InductionStateMismatch { .. }
            | DecisionOutcome::InductionOutputMismatch { .. },
        ) => {}
        other => panic!("expected a concrete failure diagnosis, got {other:?}"),
    }
}

#[test]
fn simulator_confirms_the_bound_from_both_sides() {
    let circuit = paper_figure2();
    let sim = Simulator::new(&circuit).unwrap();
    // Strictly above 2.5 (including the sub-topological 4): correct. The
    // paper's definition demands correctness for all τ > D_s; at exactly
    // 2.5 the long path arrives at the sampling edge (a race the simulator
    // resolves pessimistically), so the boundary point is not probed.
    for period in [2.51, 2.6, 3.0, 4.0, 5.0, 7.5] {
        let config = SimConfig::at_period(Time::from_f64(period)).with_cycles(24);
        let trace = sim.run(&config, |_, _| false);
        let (states, outputs) = functional_trace(&circuit, 24, |_, _| false);
        assert!(
            trace.matches(&states, &outputs),
            "expected correct behaviour at τ = {period}"
        );
    }
    // Strictly inside (2, 2.5): wrong (the exact MCT is 2.5).
    for period in [2.05, 2.2, 2.4] {
        let config = SimConfig::at_period(Time::from_f64(period)).with_cycles(24);
        let trace = sim.run(&config, |_, _| false);
        let (states, _) = functional_trace(&circuit, 24, |_, _| false);
        assert!(
            trace.first_divergence(&states).is_some(),
            "expected divergence at τ = {period}"
        );
    }
}

#[test]
fn two_vector_delay_is_an_incorrect_bound_here() {
    // Clocking at the 2-vector delay of 2 breaks the machine — the paper's
    // headline warning about transition delays below top/2.
    let circuit = paper_figure2();
    let sim = Simulator::new(&circuit).unwrap();
    let config = SimConfig::at_period(Time::from_f64(2.0)).with_cycles(24);
    let trace = sim.run(&config, |_, _| false);
    let (states, _) = functional_trace(&circuit, 24, |_, _| false);
    assert!(trace.first_divergence(&states).is_some());
}
