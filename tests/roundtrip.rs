//! Interchange-format round trips over the benchmark suite: writing any
//! suite circuit to `.bench` and parsing it back preserves structure and
//! (modulo the untimed format's lost delays and initial state) behaviour.

use mct_suite::gen::standard_suite;
use mct_suite::netlist::{parse_bench, write_bench, DelayModel};

#[test]
fn suite_roundtrips_through_bench_format() {
    for entry in standard_suite() {
        let original = &entry.circuit;
        let text = write_bench(original);
        let reparsed = parse_bench(&text, &DelayModel::Unit)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", original.name()));
        assert_eq!(
            original.num_inputs(),
            reparsed.num_inputs(),
            "{}",
            original.name()
        );
        assert_eq!(
            original.num_dffs(),
            reparsed.num_dffs(),
            "{}",
            original.name()
        );
        assert_eq!(
            original.num_gates(),
            reparsed.num_gates(),
            "{}",
            original.name()
        );
        assert_eq!(
            original.outputs().len(),
            reparsed.outputs().len(),
            "{}",
            original.name()
        );
        // Behavioural equivalence from the all-zero state (`.bench` does
        // not carry initial values).
        let mut s1 = vec![false; original.num_dffs()];
        let mut s2 = vec![false; reparsed.num_dffs()];
        for step in 0..12 {
            let ins: Vec<bool> = (0..original.num_inputs())
                .map(|i| (step * 5 + i) % 3 == 0)
                .collect();
            let (n1, o1) = original.step(&s1, &ins);
            let (n2, o2) = reparsed.step(&s2, &ins);
            assert_eq!(
                o1,
                o2,
                "{}: outputs diverge at step {step}",
                original.name()
            );
            assert_eq!(n1, n2, "{}: states diverge at step {step}", original.name());
            s1 = n1;
            s2 = n2;
        }
    }
}

#[test]
fn bench_text_is_reparseable_twice() {
    for entry in standard_suite().into_iter().take(6) {
        let t1 = write_bench(&entry.circuit);
        let c2 = parse_bench(&t1, &DelayModel::Unit).unwrap();
        let t2 = write_bench(&c2);
        let c3 = parse_bench(&t2, &DelayModel::Unit).unwrap();
        assert_eq!(c2.num_gates(), c3.num_gates());
        assert_eq!(t1.lines().count(), t2.lines().count());
    }
}
