//! Differential test between the symbolic delay engines and the dynamic
//! simulator: on random combinational circuits, the observed settling time
//! after a vector change never exceeds the exact transition delay, which in
//! turn never exceeds the floating delay or the topological delay.

use mct_prng::SmallRng;
use mct_suite::bdd::BddManager;
use mct_suite::delay::{floating_delay, topological_delay, transition_delay};
use mct_suite::gen::families;
use mct_suite::netlist::{Circuit, FsmView, GateKind, NetId, Time};
use mct_suite::sim::{SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

#[derive(Clone, Debug)]
struct CombRecipe {
    inputs: usize,
    gates: Vec<(u8, u8, u8, u8)>,
}

fn random_comb(rng: &mut SmallRng) -> CombRecipe {
    let inputs = rng.gen_range(1..4usize);
    let ngates = rng.gen_range(1..10usize);
    let gates = (0..ngates)
        .map(|_| {
            (
                rng.gen_range(0..8u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(1..5u8),
            )
        })
        .collect();
    CombRecipe { inputs, gates }
}

fn build_comb(recipe: &CombRecipe) -> Circuit {
    let mut c = Circuit::new("comb");
    let mut nets: Vec<NetId> = (0..recipe.inputs)
        .map(|i| c.add_input(format!("in{i}")))
        .collect();
    for (gi, &(ks, a, b, d)) in recipe.gates.iter().enumerate() {
        let kind = GateKind::ALL[ks as usize % GateKind::ALL.len()];
        let x = nets[a as usize % nets.len()];
        let inputs: Vec<NetId> = if kind.max_inputs() == Some(1) {
            vec![x]
        } else {
            vec![x, nets[b as usize % nets.len()]]
        };
        nets.push(c.add_gate(
            format!("g{gi}"),
            kind,
            &inputs,
            Time::from_millis(d as i64 * 700),
        ));
    }
    c.set_output(*nets.last().unwrap());
    c
}

/// Apply vector pairs dynamically; the output's last transition after
/// the second vector lands within the transition delay, and all metric
/// orderings hold.
#[test]
fn observed_settling_bounded_by_transition_delay() {
    let mut rng = SmallRng::seed_from_u64(40);
    for _ in 0..32 {
        let recipe = random_comb(&mut rng);
        let v0 = rng.gen_range(0..=255u8);
        let v1 = rng.gen_range(0..=255u8);
        let circuit = build_comb(&recipe);
        let view = FsmView::new(&circuit).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let top = topological_delay(&view).unwrap();
        let float = floating_delay(&view, &mut manager, &mut table).unwrap();
        let trans = transition_delay(&view, &mut manager, &mut table).unwrap();
        assert!(trans <= float);
        assert!(float <= top);

        // Drive vector v0 for one long cycle, then v1; observe the output.
        let period = top + Time::UNIT;
        let sim = Simulator::new(&circuit).unwrap();
        let nin = circuit.num_inputs();
        let vec_at = move |cycle: usize, i: usize| {
            let v = if cycle < 2 { v0 } else { v1 };
            v >> (i % 8) & 1 == 1
        };
        let (_, waves) = sim.run_recording(&SimConfig::at_period(period).with_cycles(4), vec_at);
        let _ = nin;
        // Vector v1 is applied at edge 2 (t = 2·period).
        let t_apply = period * 2;
        let out_net = circuit.outputs()[0];
        let out_wave = &waves[out_net.index()];
        let last_after = out_wave
            .transitions
            .iter()
            .filter(|&&(t, _)| t > t_apply)
            .map(|&(t, _)| t - t_apply)
            .max();
        if let Some(settle) = last_after {
            assert!(
                settle <= trans,
                "output still moving {settle} after the vector change, transition \
                 delay is only {trans}"
            );
        }
    }
}

/// The same bound checked deterministically on the false-path family: the
/// observed settling respects the (shorter) floating delay, not just the
/// topological delay.
#[test]
fn false_path_settles_at_floating_not_topological() {
    let circuit = families::comb_false_path(Time::from_f64(3.0), Time::from_f64(9.0), 2);
    let view = FsmView::new(&circuit).unwrap();
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();
    let float = floating_delay(&view, &mut manager, &mut table).unwrap();
    let top = topological_delay(&view).unwrap();
    assert!(float < top);
    let sim = Simulator::new(&circuit).unwrap();
    let period = top + Time::UNIT;
    for seed in 0..8u8 {
        let ins = move |cycle: usize, i: usize| (cycle * 3 + i + seed as usize).is_multiple_of(2);
        let (_, waves) = sim.run_recording(&SimConfig::at_period(period).with_cycles(6), ins);
        for (edge, out) in circuit.outputs().iter().enumerate() {
            let wave = &waves[out.index()];
            for window in 2..5i64 {
                let t_apply = period * window;
                let late = wave
                    .transitions
                    .iter()
                    .any(|&(t, _)| t > t_apply + float && t <= t_apply + top);
                assert!(
                    !late,
                    "output {edge} moved after the floating delay inside window {window} \
                     (seed {seed})"
                );
            }
        }
    }
}
