//! Soundness of the clock-skew optimization tier on hand-computed
//! fixtures: an unbalanced machine whose optimal skew beats zero skew by
//! an exactly known rational margin, and a symmetric machine where skew
//! provably cannot help — hard-asserted, not approximately.
//!
//! All bounds are in milli-units (the `Rat` report convention).

use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::gen::families;
use mct_suite::lp::Rat;
use mct_suite::netlist::{Circuit, GateKind, Time};
use mct_suite::sim::{functional_trace, DelayMode, SimConfig, Simulator};

fn skew_opts() -> MctOptions {
    MctOptions {
        skew: true,
        ..MctOptions::fixed_delays()
    }
}

/// The `skew/ring` family at (5, 1): the loop totals 6 across two
/// registers, so retiming the capture of `q1` two units late balances
/// both hops at 3. Zero-skew MCT 5, skew-optimal MCT 3 — margin exactly
/// 2 time units.
#[test]
fn unbalanced_ring_margin_is_exactly_two() {
    let c = families::skew_ring(Time::from_f64(5.0), Time::from_f64(1.0));
    let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert_eq!(skew.zero_skew_bound, Rat::new(5000, 1), "{skew:?}");
    assert_eq!(skew.optimal_bound, Rat::new(3000, 1), "{skew:?}");
    assert!(skew.improved);
    assert_eq!(
        skew.zero_skew_bound - skew.optimal_bound,
        Rat::new(2000, 1),
        "margin must be exactly 2 units"
    );
    // The witness balances the ring: the capture of q1 trails q0 by 2.
    assert_eq!(skew.witness_millis.len(), 2);
    assert_eq!(skew.witness_millis[1] - skew.witness_millis[0], 2000);
}

/// The `skew/pipeline` family at stage delays [6, 2, 1]: a three-register
/// twisted loop totalling 9, so the skew-optimal period is the loop mean
/// 9/3 = 3 while the zero-skew machine is pinned at the slowest stage, 6.
/// Margin exactly 3 time units — the acceptance fixture where optimal
/// skew strictly beats zero skew.
#[test]
fn pipeline_margin_is_exactly_three() {
    let c = families::skew_pipeline(&[
        Time::from_f64(6.0),
        Time::from_f64(2.0),
        Time::from_f64(1.0),
    ]);
    let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert_eq!(skew.zero_skew_bound, Rat::new(6000, 1), "{skew:?}");
    assert_eq!(skew.optimal_bound, Rat::new(3000, 1), "{skew:?}");
    assert_eq!(skew.lp_period_millis, 3000);
    assert!(skew.improved);
    assert_eq!(
        skew.zero_skew_bound - skew.optimal_bound,
        Rat::new(3000, 1),
        "margin must be exactly 3 units"
    );
}

/// The improving witness is not just an LP artifact: annotate the
/// pipeline with it and the machine really runs — the event-driven
/// simulation strictly above the optimal bound (the engine samples
/// strictly before the capture instant, so `+1` milli keeps the
/// saturated setup arrivals on the safe side) matches the zero-delay
/// functional machine, while the *unskewed* machine at the same period
/// diverges.
#[test]
fn pipeline_witness_replays_through_the_simulator() {
    let c = families::skew_pipeline(&[
        Time::from_f64(6.0),
        Time::from_f64(2.0),
        Time::from_f64(1.0),
    ]);
    let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert!(skew.improved);

    let mut annotated = c.clone();
    for (q, &s) in annotated.dffs().into_iter().zip(&skew.witness_millis) {
        annotated.set_dff_skew(q, Time::from_millis(s)).unwrap();
    }
    let cycles = 24;
    let tau = Time::from_millis(3001);
    let cfg = SimConfig::at_period(tau)
        .with_cycles(cycles)
        .with_delay_mode(DelayMode::Max);
    let ins = |_: usize, _: usize| false;
    let (states, outputs) = functional_trace(&annotated, cycles, ins);

    let skewed = Simulator::new(&annotated).unwrap().run(&cfg, ins);
    assert!(
        skewed.matches(&states, &outputs),
        "witness machine diverged at the skew-optimal period"
    );
    let plain = Simulator::new(&c).unwrap().run(&cfg, ins);
    assert!(
        !plain.matches(&states, &outputs),
        "the zero-skew machine should not keep up below its MCT of 6"
    );
}

/// A perfectly symmetric two-register ring: every skew assignment
/// tightens one hop exactly as much as it relaxes the other, so the
/// optimum *is* zero skew. Hard equality, all-zero witness.
#[test]
fn symmetric_ring_cannot_improve() {
    let mut c = Circuit::new("symmetric");
    let q0 = c.add_dff("q0", false, Time::ZERO);
    let q1 = c.add_dff("q1", false, Time::ZERO);
    let n1 = c.add_gate("n1", GateKind::Not, &[q0], Time::from_f64(3.0));
    let n0 = c.add_gate("n0", GateKind::Buf, &[q1], Time::from_f64(3.0));
    c.connect_dff_data("q1", n1).unwrap();
    c.connect_dff_data("q0", n0).unwrap();
    c.set_output(q0);

    let report = MctAnalyzer::new(&c).unwrap().run(&skew_opts()).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert_eq!(
        skew.optimal_bound, skew.zero_skew_bound,
        "skew must not help a symmetric ring: {skew:?}"
    );
    assert_eq!(skew.zero_skew_bound, Rat::new(3000, 1));
    assert!(!skew.improved);
    assert_eq!(skew.witness_millis, vec![0, 0]);
    assert_eq!(skew.lp_period_millis, 3000);
}

/// The skew bound caps the achievable gain: the (5, 1) ring needs a
/// spread of 2 for the full balance; with `--skew-bound 1` the best
/// structural period is 4, and the tier reports exactly that.
#[test]
fn skew_bound_is_honored_end_to_end() {
    let c = families::skew_ring(Time::from_f64(5.0), Time::from_f64(1.0));
    let opts = MctOptions {
        skew_bound: Some(1.0),
        ..skew_opts()
    };
    let report = MctAnalyzer::new(&c).unwrap().run(&opts).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert_eq!(skew.skew_bound_millis, 1000);
    assert_eq!(skew.lp_period_millis, 4000);
    assert_eq!(skew.optimal_bound, Rat::new(4000, 1), "{skew:?}");
    assert!(skew
        .witness_millis
        .iter()
        .all(|s| s.abs() <= skew.skew_bound_millis));
}
