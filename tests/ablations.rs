//! Ablations of the design choices called out in `DESIGN.md`: the
//! reachability restriction, the path-coupled linear programs, delay
//! variation, and the Φ-signature cache.

use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::gen::{families, paper_figure2, standard_suite};
use mct_suite::netlist::Time;

fn t(v: f64) -> Time {
    Time::from_f64(v)
}

const EPS: f64 = 1e-9;

/// Reachability can only help (the restricted check passes whenever the
/// unrestricted one does), so the bound with reachability is never worse.
#[test]
fn reachability_never_hurts_and_helps_on_planted_rows() {
    for entry in standard_suite() {
        let with = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                use_reachability: true,
                ..MctOptions::paper()
            })
            .unwrap();
        let without = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                use_reachability: false,
                ..MctOptions::paper()
            })
            .unwrap();
        assert!(
            with.mct_upper_bound <= without.mct_upper_bound + EPS,
            "{}: reachability worsened the bound ({} vs {})",
            entry.circuit.name(),
            with.mct_upper_bound,
            without.mct_upper_bound
        );
    }
    // On the unreachable-slack family the restriction is the whole story.
    let c = families::unreachable_slack(4, t(6.0), t(8.0));
    let with = MctAnalyzer::new(&c)
        .unwrap()
        .run(&MctOptions::paper())
        .unwrap();
    let without = MctAnalyzer::new(&c)
        .unwrap()
        .run(&MctOptions {
            use_reachability: false,
            ..MctOptions::paper()
        })
        .unwrap();
    assert!(
        with.mct_upper_bound < without.mct_upper_bound - EPS,
        "reachability should strictly tighten the unreachable-slack bound \
         ({} vs {})",
        with.mct_upper_bound,
        without.mct_upper_bound
    );
}

/// The LP feasibility mode only prunes combinations (it cannot declare an
/// infeasible combination feasible), so its bound is never larger than the
/// closed-form one, and on the paper example both give 2.5.
#[test]
fn lp_mode_consistent_with_closed_form() {
    for entry in standard_suite().into_iter().take(10) {
        let closed = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                path_coupled_lp: false,
                ..MctOptions::paper()
            })
            .unwrap();
        let lp = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                path_coupled_lp: true,
                ..MctOptions::paper()
            })
            .unwrap();
        assert!(
            lp.mct_upper_bound <= closed.mct_upper_bound + 1e-4,
            "{}: LP bound {} above closed-form {}",
            entry.circuit.name(),
            lp.mct_upper_bound,
            closed.mct_upper_bound
        );
    }
}

/// Widening the delay intervals (more variation) can only add feasible
/// shift combinations, so the bound is monotone in the variation.
#[test]
fn bound_monotone_in_delay_variation() {
    for entry in standard_suite().into_iter().take(12) {
        let fixed = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions::fixed_delays())
            .unwrap();
        let varied = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                delay_variation: Some((9, 10)),
                ..MctOptions::paper()
            })
            .unwrap();
        // 70% variation multiplies the shift sets; skip circuits whose Φ
        // product genuinely explodes (that is the documented behaviour).
        let wide = match MctAnalyzer::new(&entry.circuit).unwrap().run(&MctOptions {
            delay_variation: Some((7, 10)),
            ..MctOptions::paper()
        }) {
            Ok(r) => r,
            Err(mct_suite::core::MctError::SigmaExplosion { .. }) => continue,
            Err(e) => panic!("{}: {e}", entry.circuit.name()),
        };
        assert!(
            fixed.mct_upper_bound <= varied.mct_upper_bound + EPS,
            "{}: fixed {} > varied {}",
            entry.circuit.name(),
            fixed.mct_upper_bound,
            varied.mct_upper_bound
        );
        assert!(
            varied.mct_upper_bound <= wide.mct_upper_bound + EPS,
            "{}: 90% {} > 70% {}",
            entry.circuit.name(),
            varied.mct_upper_bound,
            wide.mct_upper_bound
        );
    }
}

/// The Φ-signature cache (the paper's suggested speed-up) answers repeat
/// combinations without re-running the decision algorithm.
#[test]
fn sigma_cache_fires_on_exhaustive_sweeps() {
    let c = paper_figure2();
    let report = MctAnalyzer::new(&c)
        .unwrap()
        .run(&MctOptions {
            exhaustive_floor: Some(1.0),
            ..MctOptions::paper()
        })
        .unwrap();
    assert!(report.sigma_cache_hits > 0);
    assert!(report.sigma_checked > report.sigma_cache_hits);
}

/// Exhaustive sweeps agree with first-failure sweeps on the reported bound.
#[test]
fn exhaustive_and_first_failure_agree() {
    for entry in standard_suite().into_iter().take(10) {
        let fast = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions::paper())
            .unwrap();
        if fast.exhausted {
            continue;
        }
        let floor = (fast.mct_upper_bound * 0.5).max(0.1);
        let full = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                exhaustive_floor: Some(floor),
                ..MctOptions::paper()
            })
            .unwrap();
        assert!(
            (fast.mct_upper_bound - full.mct_upper_bound).abs() < EPS,
            "{}: bounds disagree ({} vs {})",
            entry.circuit.name(),
            fast.mct_upper_bound,
            full.mct_upper_bound
        );
    }
}

/// The exact product-machine check accepts everything the sufficient
/// condition accepts (its bound is never larger), and strictly more when
/// divergent state is unobservable.
#[test]
fn exact_check_never_worse_and_sometimes_strictly_better() {
    use mct_suite::netlist::{Circuit, GateKind};
    for entry in standard_suite().into_iter().take(8) {
        if entry.circuit.num_dffs() > 6 {
            // The expanded product state grows as ns·m; with the naive
            // variable order the monolithic relation gets expensive past a
            // handful of registers. Documented cost of the exact mode.
            continue;
        }
        let cx = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions::fixed_delays())
            .unwrap();
        let exact = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions {
                exact_check: true,
                ..MctOptions::fixed_delays()
            })
            .unwrap();
        assert!(
            exact.mct_upper_bound <= cx.mct_upper_bound + EPS,
            "{}: exact bound {} above C_x bound {}",
            entry.circuit.name(),
            exact.mct_upper_bound,
            cx.mct_upper_bound
        );
    }
    // A shadow register that no output observes: C_x rejects lateness on
    // it, the exact check does not.
    let mut c = Circuit::new("shadow");
    let q0 = c.add_dff("q0", false, Time::ZERO);
    c.add_dff("q1", false, Time::ZERO);
    let nq = c.add_gate("nq", GateKind::Not, &[q0], t(1.0));
    let slow = c.add_gate("slow", GateKind::Buf, &[q0], t(5.0));
    c.connect_dff_data("q0", nq).unwrap();
    c.connect_dff_data("q1", slow).unwrap();
    c.set_output(q0);
    let cx = MctAnalyzer::new(&c)
        .unwrap()
        .run(&MctOptions::fixed_delays())
        .unwrap();
    let exact = MctAnalyzer::new(&c)
        .unwrap()
        .run(&MctOptions {
            exact_check: true,
            ..MctOptions::fixed_delays()
        })
        .unwrap();
    assert!(
        exact.mct_upper_bound < cx.mct_upper_bound - EPS,
        "exact {} should beat C_x {} on the shadow machine",
        exact.mct_upper_bound,
        cx.mct_upper_bound
    );
}
