//! Suite-wide soundness: the delay-metric ordering invariants of the paper
//! hold on every benchmark circuit, and every certified cycle-time bound is
//! confirmed dynamically by the timing simulator under random bounded
//! delays and random input sequences.

use mct_suite::bdd::BddManager;
use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::delay;
use mct_suite::gen::standard_suite;
use mct_suite::netlist::{FsmView, Time};
use mct_suite::sim::{functional_trace, DelayMode, SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

const EPS: f64 = 1e-9;

#[test]
fn metric_ordering_invariants_across_the_suite() {
    for entry in standard_suite() {
        let c = &entry.circuit;
        let view = FsmView::new(c).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let m = delay::compute_all(&view, &mut manager, &mut table).unwrap();
        assert!(
            m.floating <= m.topological,
            "{}: floating {} > topological {}",
            c.name(),
            m.floating,
            m.topological
        );
        assert!(
            m.transition <= m.floating,
            "{}: transition {} > floating {}",
            c.name(),
            m.transition,
            m.floating
        );
        assert!(m.shortest <= m.topological, "{}", c.name());

        let report = MctAnalyzer::new(c)
            .unwrap()
            .run(&MctOptions::paper())
            .unwrap();
        assert!(
            report.mct_upper_bound <= m.floating.as_f64() + EPS,
            "{}: MCT bound {} exceeds floating delay {}",
            c.name(),
            report.mct_upper_bound,
            m.floating
        );
        assert!(report.mct_upper_bound >= 0.0, "{}", c.name());
    }
}

#[test]
fn planted_expectations_hold() {
    for entry in standard_suite() {
        let c = &entry.circuit;
        let view = FsmView::new(c).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let m = delay::compute_all(&view, &mut manager, &mut table).unwrap();
        let report = MctAnalyzer::new(c)
            .unwrap()
            .run(&MctOptions::paper())
            .unwrap();
        if entry.expect_tighter_mct {
            assert!(
                report.mct_upper_bound < m.floating.as_f64() - EPS,
                "{}: expected MCT {} strictly below floating {}",
                c.name(),
                report.mct_upper_bound,
                m.floating
            );
        }
        if entry.expect_comb_false_path {
            assert!(
                m.floating < m.topological,
                "{}: expected floating {} below topological {}",
                c.name(),
                m.floating,
                m.topological
            );
        }
    }
}

#[test]
fn certified_bounds_validated_by_simulation() {
    // Simulate every suite circuit just above its certified bound, with
    // random 90–100% delays and pseudo-random inputs, and demand exact
    // agreement with the zero-delay functional model.
    for entry in standard_suite() {
        let c = &entry.circuit;
        let report = MctAnalyzer::new(c)
            .unwrap()
            .run(&MctOptions::paper())
            .unwrap();
        let period = Time::from_millis((report.mct_upper_bound * 1000.0).round() as i64 + 50);
        if period <= Time::ZERO {
            continue;
        }
        let sim = Simulator::new(c).unwrap();
        for seed in 0..3u64 {
            let config = SimConfig::at_period(period)
                .with_cycles(40)
                .with_delay_mode(DelayMode::RandomUniform {
                    min_factor_percent: 90,
                    seed,
                });
            let ins = move |cycle: usize, i: usize| (cycle * 13 + i * 5 + seed as usize) % 7 < 3;
            let trace = sim.run(&config, ins);
            let (states, outputs) = functional_trace(c, 40, ins);
            assert!(
                trace.matches(&states, &outputs),
                "{}: divergence at certified-safe τ = {} (seed {seed}), first at cycle {:?}",
                c.name(),
                period,
                trace.first_divergence(&states)
            );
        }
    }
}

#[test]
fn bounds_are_sharp_for_known_circuits() {
    // The certified bound is only guaranteed *sufficient*, but for these
    // hand-analyzed corpus machines it is also sharp: just below the bound
    // the maximum-delay machine visibly corrupts its state trace, while
    // just above it the match with the functional model is exact. The probe
    // periods sit strictly inside each circuit's failing region.
    for (stem, probe_millis) in [("fig2", 2250i64), ("ring2", 1250), ("bpgrid", 3500)] {
        let path = format!(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/{}.bench"),
            stem
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let c = mct_suite::fuzz::parse_timed_bench(&text).unwrap();
        let report = MctAnalyzer::new(&c)
            .unwrap()
            .run(&MctOptions::paper())
            .unwrap();
        let probe = Time::from_millis(probe_millis);
        assert!(
            probe.as_f64() < report.mct_upper_bound - EPS,
            "{stem}: probe {} is not below the bound {}",
            probe.as_f64(),
            report.mct_upper_bound
        );
        let sim = Simulator::new(&c).unwrap();
        let ins = |cycle: usize, i: usize| (cycle + i).is_multiple_of(3);
        let (states, outputs) = functional_trace(&c, 16, ins);

        let below = SimConfig::at_period(probe)
            .with_cycles(16)
            .with_delay_mode(DelayMode::Max);
        let trace = sim.run(&below, ins);
        assert!(
            !trace.matches(&states, &outputs),
            "{stem}: expected divergence at τ = {} below the bound {}",
            probe.as_f64(),
            report.mct_upper_bound
        );

        let safe = Time::from_millis((report.mct_upper_bound * 1000.0).round() as i64 + 50);
        let above = SimConfig::at_period(safe)
            .with_cycles(16)
            .with_delay_mode(DelayMode::Max);
        let trace = sim.run(&above, ins);
        assert!(
            trace.matches(&states, &outputs),
            "{stem}: divergence at certified-safe τ = {}",
            safe.as_f64()
        );
    }
}

#[test]
fn deep_false_path_row_matches_s38584_narrative() {
    // The paper's s38584: MCT below a quarter of the topological delay, so
    // a correct 2-vector bound (at best top/2) would be off by over 200%.
    let suite = standard_suite();
    let entry = suite
        .iter()
        .find(|e| e.circuit.name() == "syn-s38584")
        .expect("deep row present");
    let view = FsmView::new(&entry.circuit).unwrap();
    let top = delay::topological_delay(&view).unwrap().as_f64();
    let report = MctAnalyzer::new(&entry.circuit)
        .unwrap()
        .run(&MctOptions::paper())
        .unwrap();
    assert!(
        report.mct_upper_bound < top / 4.0,
        "MCT {} should be below top/4 = {}",
        report.mct_upper_bound,
        top / 4.0
    );
    let best_two_vector_bound = top / 2.0;
    assert!(
        best_two_vector_bound > 2.0 * report.mct_upper_bound,
        "a certified 2-vector bound would overstate the cycle time by over 200%"
    );
}

#[test]
fn tighter_fraction_mirrors_the_paper() {
    // Paper: about 20% of the suite improves; we assert a band around it.
    let suite = standard_suite();
    let mut tighter = 0usize;
    for entry in &suite {
        let view = FsmView::new(&entry.circuit).unwrap();
        let mut manager = BddManager::new();
        let mut table = TimedVarTable::new();
        let float = delay::floating_delay(&view, &mut manager, &mut table)
            .unwrap()
            .as_f64();
        let report = MctAnalyzer::new(&entry.circuit)
            .unwrap()
            .run(&MctOptions::paper())
            .unwrap();
        if report.mct_upper_bound < float - EPS {
            tighter += 1;
        }
    }
    let frac = tighter as f64 / suite.len() as f64;
    assert!(
        (0.15..=0.45).contains(&frac),
        "tighter fraction {frac} outside the expected band"
    );
}
