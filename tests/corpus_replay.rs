//! Replays every fuzzer corpus entry through the full oracle stack.
//!
//! The corpus (`tests/corpus/`) holds hand-minimized seed circuits plus any
//! shrunk repro a fuzzing run has persisted. Each entry is a timed `.bench`
//! file with a JSON provenance sidecar; all of them must parse, round-trip
//! byte-identically through the timed writer, and pass every oracle — a
//! repro that regresses fails loudly here with its provenance attached.

use std::path::Path;

use mct_suite::fuzz::{
    check_circuit, load_corpus, parse_timed_bench, write_timed_bench, OracleCtx, OracleOptions,
    OracleSelect,
};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

#[test]
fn corpus_is_present_and_documented() {
    let corpus = load_corpus(corpus_dir());
    assert!(
        corpus.len() >= 5,
        "expected at least the five hand-minimized seed entries, found {}",
        corpus.len()
    );
    for (path, _, prov) in &corpus {
        let prov = prov.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: missing or unreadable provenance sidecar",
                path.display()
            )
        });
        assert!(
            !prov.oracle.is_empty() && !prov.detail.is_empty(),
            "{}: empty provenance fields",
            path.display()
        );
    }
}

#[test]
fn corpus_round_trips_exactly() {
    // The parser re-declares gates in dependency order, so the bytes are
    // not stable across a write→parse→write cycle — but the circuit
    // content is: the canonical digest (which ignores declaration order
    // and captures every delay) must survive the timed round-trip.
    for (path, circuit, _) in load_corpus(corpus_dir()) {
        let rewritten = write_timed_bench(&circuit);
        let reparsed = parse_timed_bench(&rewritten).unwrap();
        assert_eq!(reparsed.name(), circuit.name(), "{}", path.display());
        assert_eq!(
            mct_suite::netlist::circuit_digests(&circuit).content,
            mct_suite::netlist::circuit_digests(&reparsed).content,
            "{}: content digest changed across the timed round-trip",
            path.display()
        );
    }
}

#[test]
fn skew_seeds_parse_annotated_and_cover_both_regimes() {
    // The two skew seeds exist, carry their `# .skew` annotations through
    // the corpus parser, and land on opposite sides of the optimization:
    // `skewimp` is annotated with the witness that beats zero skew by
    // exactly 2 units; `skewneu` carries an unhelpful annotation the tier
    // must decline to improve on.
    use mct_suite::core::{MctAnalyzer, MctOptions};
    use mct_suite::lp::Rat;

    let corpus = load_corpus(corpus_dir());
    let find = |name: &str| {
        corpus
            .iter()
            .map(|(_, c, _)| c)
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("seed `{name}` missing from tests/corpus"))
    };
    let opts = MctOptions {
        skew: true,
        ..MctOptions::fixed_delays()
    };

    let imp = find("skewimp");
    assert!(imp.has_skew(), "skewimp lost its annotation in parsing");
    let report = MctAnalyzer::new(imp).unwrap().run(&opts).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert!(skew.improved);
    assert_eq!(skew.zero_skew_bound, Rat::new(5000, 1), "{skew:?}");
    assert_eq!(skew.optimal_bound, Rat::new(3000, 1), "{skew:?}");
    assert_eq!(
        skew.zero_skew_bound - skew.optimal_bound,
        Rat::new(2000, 1),
        "exact margin"
    );
    // The annotation *is* a witness: the machine's own bound is optimal.
    assert_eq!(report.bound_exact, Rat::new(3000, 1));

    let neu = find("skewneu");
    assert!(neu.has_skew(), "skewneu lost its annotation in parsing");
    let report = MctAnalyzer::new(neu).unwrap().run(&opts).unwrap();
    let skew = report.skew.as_ref().expect("tier ran");
    assert!(!skew.improved);
    assert_eq!(skew.optimal_bound, skew.zero_skew_bound, "{skew:?}");
    assert_eq!(skew.zero_skew_bound, Rat::new(3000, 1), "{skew:?}");
    assert!(skew.witness_millis.iter().all(|&s| s == 0), "{skew:?}");
    // The unhelpful annotation makes the machine itself slower than the
    // zero-skew baseline — exactly what the tier reports around.
    assert_eq!(report.bound_exact, Rat::new(3500, 1));
}

#[test]
fn corpus_replays_clean_through_the_oracle_stack() {
    let corpus = load_corpus(corpus_dir());
    let mut ctx = OracleCtx::new(OracleSelect::All, OracleOptions::default());
    for (path, circuit, prov) in &corpus {
        if let Some(f) = check_circuit(&mut ctx, circuit, 0xC0FFEE) {
            panic!(
                "{} [{}]: {}\n(provenance: {:?})",
                path.display(),
                f.oracle,
                f.detail,
                prov
            );
        }
    }
}
