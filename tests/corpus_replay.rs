//! Replays every fuzzer corpus entry through the full oracle stack.
//!
//! The corpus (`tests/corpus/`) holds hand-minimized seed circuits plus any
//! shrunk repro a fuzzing run has persisted. Each entry is a timed `.bench`
//! file with a JSON provenance sidecar; all of them must parse, round-trip
//! byte-identically through the timed writer, and pass every oracle — a
//! repro that regresses fails loudly here with its provenance attached.

use std::path::Path;

use mct_suite::fuzz::{
    check_circuit, load_corpus, parse_timed_bench, write_timed_bench, OracleCtx, OracleOptions,
    OracleSelect,
};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

#[test]
fn corpus_is_present_and_documented() {
    let corpus = load_corpus(corpus_dir());
    assert!(
        corpus.len() >= 3,
        "expected at least the three hand-minimized seed entries, found {}",
        corpus.len()
    );
    for (path, _, prov) in &corpus {
        let prov = prov.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: missing or unreadable provenance sidecar",
                path.display()
            )
        });
        assert!(
            !prov.oracle.is_empty() && !prov.detail.is_empty(),
            "{}: empty provenance fields",
            path.display()
        );
    }
}

#[test]
fn corpus_round_trips_exactly() {
    // The parser re-declares gates in dependency order, so the bytes are
    // not stable across a write→parse→write cycle — but the circuit
    // content is: the canonical digest (which ignores declaration order
    // and captures every delay) must survive the timed round-trip.
    for (path, circuit, _) in load_corpus(corpus_dir()) {
        let rewritten = write_timed_bench(&circuit);
        let reparsed = parse_timed_bench(&rewritten).unwrap();
        assert_eq!(reparsed.name(), circuit.name(), "{}", path.display());
        assert_eq!(
            mct_suite::netlist::circuit_digests(&circuit).content,
            mct_suite::netlist::circuit_digests(&reparsed).content,
            "{}: content digest changed across the timed round-trip",
            path.display()
        );
    }
}

#[test]
fn corpus_replays_clean_through_the_oracle_stack() {
    let corpus = load_corpus(corpus_dir());
    let mut ctx = OracleCtx::new(OracleSelect::All, OracleOptions::default());
    for (path, circuit, prov) in &corpus {
        if let Some(f) = check_circuit(&mut ctx, circuit, 0xC0FFEE) {
            panic!(
                "{} [{}]: {}\n(provenance: {:?})",
                path.display(),
                f.oracle,
                f.detail,
                prov
            );
        }
    }
}
