//! Order invariance: the serialized analysis report is byte-identical
//! under every variable-ordering policy — allocation order, the structural
//! static order, and static + growth-triggered sifting — and survives
//! *forced* mid-analysis reordering (`MCT_BDD_SIFT_STRESS=1`, which sifts
//! at every garbage collection).
//!
//! This is the hard correctness bar of the ordering subsystem: variable
//! order may change node counts and wall time, never results. The analyses
//! earn this by comparing canonical function handles only; these tests
//! guard that property end to end, through the parallel sweep and the
//! warm-start path.

use mct_serve::report::report_to_json;
use mct_suite::core::{MctAnalyzer, MctOptions, ReorderSchedule, SigmaStrategy, VarOrder};
use mct_suite::gen::{families, paper_figure2, s27};
use mct_suite::netlist::{Circuit, DelayModel, Time};

const POLICIES: [VarOrder; 3] = [VarOrder::Alloc, VarOrder::Static, VarOrder::Sift];

const SCHEDULES: [ReorderSchedule; 4] = [
    ReorderSchedule::GrowthRatio(1.5),
    ReorderSchedule::AlwaysOnce,
    ReorderSchedule::TimeBudget(20),
    ReorderSchedule::Adaptive,
];

/// The invariance corpus: the paper's Figure 2, the ISCAS'89 s27, and
/// twenty seeded random FSMs (same family parameters as the golden-replay
/// corpus).
fn corpus() -> Vec<(String, Circuit, MctOptions)> {
    let mut out = vec![
        ("fig2".into(), paper_figure2(), MctOptions::paper()),
        ("s27".into(), s27(&DelayModel::Mapped), MctOptions::paper()),
    ];
    for seed in 0..20u64 {
        let c = families::random_fsm(seed, 3 + (seed as usize % 3), seed as usize % 2, 10);
        out.push((format!("random_fsm/{seed}"), c, MctOptions::fixed_delays()));
    }
    out
}

fn serialized(circuit: &Circuit, ordering: VarOrder, threads: usize, base: &MctOptions) -> String {
    let opts = MctOptions {
        ordering,
        num_threads: threads,
        ..base.clone()
    };
    match MctAnalyzer::new(circuit).expect("analyzable").run(&opts) {
        Ok(report) => report_to_json(&report).to_compact(),
        Err(e) => format!("error: {e}"),
    }
}

fn check_corpus(circuits: &[(String, Circuit, MctOptions)], threads: &[usize]) {
    for (name, circuit, opts) in circuits {
        let reference = serialized(circuit, VarOrder::Alloc, 1, opts);
        for &ordering in &POLICIES {
            for &t in threads {
                if (ordering, t) == (VarOrder::Alloc, 1) {
                    continue;
                }
                let got = serialized(circuit, ordering, t, opts);
                assert_eq!(
                    reference, got,
                    "{name}: report under {ordering:?} ordering at {t} threads \
                     differs from the alloc-order sequential run"
                );
            }
        }
    }
}

#[test]
fn reports_identical_across_ordering_policies() {
    check_corpus(&corpus(), &[1, 2, 4]);
}

/// Skew mode runs the optimization tier — the LP binary search, the exact
/// Bellman–Ford certification, and up to two exact sub-sweeps (the zeroed
/// baseline and the witness machine) — and all of it must be just as
/// order- and thread-invariant as the base sweep: byte-identical reports
/// across {alloc, static, sift} × {1, 2, 4}. The corpus includes the
/// `skew/*` families, where the tier genuinely improves the bound and a
/// non-trivial witness participates in the serialized report.
#[test]
fn skew_mode_reports_identical_across_ordering_policies() {
    let mut circuits: Vec<_> = corpus().into_iter().take(10).collect();
    circuits.push((
        "skew_ring".into(),
        families::skew_ring(Time::from_f64(5.0), Time::from_f64(1.0)),
        MctOptions::fixed_delays(),
    ));
    circuits.push((
        "skew_pipeline".into(),
        families::skew_pipeline(&[
            Time::from_f64(6.0),
            Time::from_f64(2.0),
            Time::from_f64(1.0),
        ]),
        MctOptions::fixed_delays(),
    ));
    let skewed: Vec<_> = circuits
        .into_iter()
        .map(|(name, c, opts)| (name, c, MctOptions { skew: true, ..opts }))
        .collect();
    check_corpus(&skewed, &[1, 2, 4]);
}

/// The cone-decomposed path must agree byte for byte with the monolithic
/// alloc-order sequential reference under every ordering policy and
/// thread count — including on a genuinely multi-cone machine (the
/// three-component composite), where decomposition actually splits the
/// analysis instead of degenerating to the single-cone fallback.
#[test]
fn decomposed_reports_match_monolithic_reference() {
    let mut circuits = corpus();
    circuits.push((
        "composite".into(),
        families::composite(4, 3, 3, Time::from_f64(6.0), Time::from_f64(8.0)),
        MctOptions::paper(),
    ));
    for (name, circuit, base) in &circuits {
        let reference = serialized(circuit, VarOrder::Alloc, 1, base);
        for &ordering in &POLICIES {
            for &t in &[1usize, 2, 4] {
                let opts = MctOptions {
                    decompose: true,
                    ordering,
                    num_threads: t,
                    ..base.clone()
                };
                let got = match MctAnalyzer::new(circuit).expect("analyzable").run(&opts) {
                    Ok(report) => report_to_json(&report).to_compact(),
                    Err(e) => format!("error: {e}"),
                };
                assert_eq!(
                    reference, got,
                    "{name}: decomposed report under {ordering:?} ordering at {t} \
                     threads differs from the monolithic alloc-order sequential run"
                );
            }
        }
    }
}

/// Every reorder schedule — crossed with thread counts and both
/// σ-enumeration strategies — must reproduce the alloc-order sequential
/// report byte for byte. Schedules change *when* sifting pays, never
/// *what* comes out; this is the matrix the serve tier's cache-fingerprint
/// exclusion of `reorder_schedule` relies on.
#[test]
fn reports_identical_across_reorder_schedules() {
    let circuits: Vec<_> = corpus().into_iter().take(10).collect();
    for (name, circuit, base) in &circuits {
        let reference = serialized(circuit, VarOrder::Alloc, 1, base);
        for &schedule in &SCHEDULES {
            for &threads in &[1usize, 2, 4] {
                for &sigma in &[SigmaStrategy::Flat, SigmaStrategy::Pruned] {
                    let opts = MctOptions {
                        ordering: VarOrder::Sift,
                        reorder_schedule: schedule,
                        num_threads: threads,
                        sigma,
                        ..base.clone()
                    };
                    let got = match MctAnalyzer::new(circuit).expect("analyzable").run(&opts) {
                        Ok(report) => report_to_json(&report).to_compact(),
                        Err(e) => format!("error: {e}"),
                    };
                    assert_eq!(
                        reference, got,
                        "{name}: report under {schedule:?} schedule at {threads} threads \
                         with {sigma:?} σ differs from the alloc-order sequential run"
                    );
                }
            }
        }
    }
}

/// Warm starts must reproduce the cold report under every policy — the
/// snapshot carries the learned variable order, and importing it must not
/// perturb any answer.
#[test]
fn warm_start_is_order_invariant() {
    let c = paper_figure2();
    for &ordering in &POLICIES {
        let opts = MctOptions {
            ordering,
            ..MctOptions::paper()
        };
        let (cold, snap) = MctAnalyzer::new(&c).unwrap().run_warm(&opts, None).unwrap();
        let snap = snap.expect("reachability on ⇒ snapshot");
        let (warm, _) = MctAnalyzer::new(&c)
            .unwrap()
            .run_warm(&opts, Some(&snap))
            .unwrap();
        assert_eq!(
            report_to_json(&cold).to_compact(),
            report_to_json(&warm).to_compact(),
            "{ordering:?}: warm-started report differs from cold"
        );
    }
}

/// Re-runs the invariance check in a child process with
/// `MCT_BDD_SIFT_STRESS=1`, so the kernel reorders at *every* garbage
/// collection mid-analysis. The env var is latched once per process, which
/// is why this needs a child rather than `set_var` in-process.
#[test]
fn reports_survive_forced_mid_analysis_reordering() {
    if std::env::var_os("MCT_ORDER_STRESS_CHILD").is_some() {
        // We are the child: stress sifting is active. A smaller corpus
        // keeps the run affordable (every GC now pays a full sift pass).
        let circuits: Vec<_> = corpus().into_iter().take(8).collect();
        check_corpus(&circuits, &[1, 4]);
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .args([
            "--exact",
            "reports_survive_forced_mid_analysis_reordering",
            "--nocapture",
        ])
        .env("MCT_BDD_SIFT_STRESS", "1")
        .env("MCT_ORDER_STRESS_CHILD", "1")
        .status()
        .expect("spawn stress child");
    assert!(
        status.success(),
        "order invariance violated under MCT_BDD_SIFT_STRESS=1"
    );
}
