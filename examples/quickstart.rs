//! Quickstart: parse an ISCAS'89 netlist, compute every delay metric, and
//! bound the minimum cycle time.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::delay;
use mct_suite::gen::S27_BENCH;
use mct_suite::netlist::{parse_bench, DelayModel, FsmView};
use mct_suite::tbf::TimedVarTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse a `.bench` netlist (the embedded ISCAS'89 s27) and annotate
    //    it with a technology-like delay model.
    let mut circuit = parse_bench(S27_BENCH, &DelayModel::Mapped)?;
    circuit.set_name("s27");
    println!("circuit {}: {}", circuit.name(), circuit.stats());

    // 2. Classic combinational delay metrics — what previous approaches
    //    would report as the cycle-time bound.
    let view = FsmView::new(&circuit)?;
    let mut manager = mct_suite::bdd::BddManager::new();
    let mut table = TimedVarTable::new();
    let metrics = delay::compute_all(&view, &mut manager, &mut table)?;
    println!("combinational delays: {metrics}");

    // 3. The sequential bound, with the paper's 90–100% gate-delay
    //    variation and the reachable-state-space restriction.
    let report = MctAnalyzer::new(&circuit)?.run(&MctOptions::paper())?;
    println!(
        "sequential MCT bound: {:.3} (steady-state delay {:.3}, {} candidate periods, \
         {} shift combinations, {} cache hits)",
        report.mct_upper_bound,
        report.steady_delay,
        report.candidates_checked,
        report.sigma_checked,
        report.sigma_cache_hits,
    );
    if let Some(states) = report.reachable_states {
        println!(
            "reachable states: {} of {}",
            states,
            1u64 << circuit.num_dffs()
        );
    }
    if report.mct_upper_bound < metrics.floating.as_f64() {
        println!("→ the sequential analysis beats the floating delay!");
    } else {
        println!("→ the floating delay is already tight for this circuit.");
    }
    Ok(())
}
