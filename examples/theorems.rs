//! Dynamic demonstrations of the paper's Theorems 1 and 2 with the
//! event-driven timing simulator.
//!
//! * **Theorem 1**: `floating delay + setup` is a correct (possibly
//!   conservative) cycle-time bound provided the shortest combinational
//!   path is at least the hold time.
//! * **Theorem 2**: the 2-vector (transition) delay is a correct bound only
//!   when it reaches half the topological delay; Figure 2 violates the
//!   condition and clocking at its 2-vector delay breaks the machine.
//!
//! ```text
//! cargo run --example theorems
//! ```

use mct_suite::bdd::BddManager;
use mct_suite::delay::{
    floating_delay, shortest_path_delay, theorem1_bound, theorem2_applicable, topological_delay,
    transition_delay,
};
use mct_suite::gen::paper_figure2;
use mct_suite::netlist::{FsmView, Time};
use mct_suite::sim::{functional_trace, DelayMode, SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

fn check_period(
    circuit: &mct_suite::netlist::Circuit,
    period: Time,
    setup: Time,
    hold: Time,
) -> (bool, usize) {
    let sim = Simulator::new(circuit).expect("valid circuit");
    let config = SimConfig::at_period(period)
        .with_cycles(32)
        .with_setup_hold(setup, hold)
        .with_delay_mode(DelayMode::RandomUniform {
            min_factor_percent: 90,
            seed: 7,
        });
    let trace = sim.run(&config, |_, _| false);
    let (states, outputs) = functional_trace(circuit, 32, |_, _| false);
    (trace.matches(&states, &outputs), trace.violations.len())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = paper_figure2();
    let view = FsmView::new(&circuit)?;
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();

    let top = topological_delay(&view)?;
    let float = floating_delay(&view, &mut manager, &mut table)?;
    let trans = transition_delay(&view, &mut manager, &mut table)?;
    let shortest = shortest_path_delay(&view)?;
    let setup = Time::from_f64(0.2);
    let hold = Time::from_f64(0.1);

    println!("Figure-2 circuit: top {top}, float {float}, trans {trans}, min path {shortest}");
    println!();

    // ---- Theorem 1 -----------------------------------------------------
    // Figure 2's shortest combinational path is 0 (the register drives the
    // output directly), so Theorem 1 cannot certify it with a nonzero hold
    // window. s27 has a real shortest path and shows the positive case.
    match theorem1_bound(float, shortest, setup, hold) {
        Some(bound) => println!("Theorem 1 on Figure 2: certified bound {bound}"),
        None => {
            println!("Theorem 1 on Figure 2: does not apply — min path {shortest} < hold {hold}")
        }
    }
    {
        let s27 = mct_suite::gen::s27(&mct_suite::netlist::DelayModel::Mapped);
        let v27 = FsmView::new(&s27)?;
        let mut m27 = BddManager::new();
        let mut t27 = TimedVarTable::new();
        let float27 = floating_delay(&v27, &mut m27, &mut t27)?;
        let short27 = shortest_path_delay(&v27)?;
        match theorem1_bound(float27, short27, setup, hold) {
            Some(bound) => {
                println!(
                    "Theorem 1 on s27: min path {short27} ≥ hold {hold} → floating + setup \
                     = {bound} is a certified bound. Simulating at it:"
                );
                let (ok, viol) = check_period(&s27, bound, setup, hold);
                println!(
                    "  τ = {bound}: behaviour {}  ({viol} setup/hold violations)",
                    if ok { "correct ✓" } else { "WRONG ✗" }
                );
            }
            None => println!("Theorem 1 on s27: does not apply"),
        }
    }
    println!();

    // ---- Theorem 2 -----------------------------------------------------
    println!(
        "Theorem 2: transition delay {trans} vs half the topological delay {} → {}",
        Time::from_millis(top.millis() / 2),
        if theorem2_applicable(trans, top) {
            "condition holds, bound certified"
        } else {
            "condition FAILS — the 2-vector delay is not a trustworthy bound"
        }
    );
    for period in [trans, Time::from_f64(2.2), Time::from_f64(2.5), float] {
        let (ok, _) = check_period(&circuit, period, Time::ZERO, Time::ZERO);
        println!(
            "  clocking at τ = {period}: behaviour {}",
            if ok { "correct ✓" } else { "WRONG ✗" }
        );
    }
    println!();
    println!(
        "The machine is wrong at its 2-vector delay (2) yet correct at 2.5 — the exact \
         minimum cycle time the sequential analysis certifies, below the floating delay 4."
    );
    Ok(())
}
