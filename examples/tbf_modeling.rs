//! The TBF gate models of the paper's Figure 1, evaluated on waveforms:
//!
//! * (a) a complex gate with one delay per input-output pair;
//! * (b) a buffer with different rising and falling delays;
//! * (c) an OR gate with per-pin rise/fall delays;
//! * (d) the edge-triggered D flip-flop as the sampling operator
//!   `Q(t) = D(P·⌊(t−d)/P⌋)` — memory without feedback.
//!
//! ```text
//! cargo run --example tbf_modeling
//! ```

use mct_suite::netlist::{GateKind, PinDelay, Time};
use mct_suite::tbf::{Tbf, Waveform};

fn t(v: f64) -> Time {
    Time::from_f64(v)
}

fn show_waveform(label: &str, f: &Tbf, period: Time, signals: &dyn Fn(usize, Time) -> bool) {
    print!("  {label:24}");
    for step in 0..24 {
        let at = Time::from_millis(step * 500);
        print!(
            "{}",
            if f.eval(at, period, signals) {
                '█'
            } else {
                '·'
            }
        );
    }
    println!();
}

fn main() {
    // ---- (a) complex gate: y = x̄₁(t−τ₁) + x₂(t−τ₂) + x₃(t−τ₃) ---------
    let complex = Tbf::or(vec![
        Tbf::input(0, t(1.0)).not(),
        Tbf::input(1, t(2.0)),
        Tbf::input(2, t(3.0)),
    ]);
    println!("Figure 1(a) — complex gate TBF: {}", complex);

    // ---- (b) rise/fall-asymmetric buffer ------------------------------
    let slow_rise = Tbf::rise_fall_buffer(Tbf::signal(0), PinDelay::new(t(2.0), t(0.5)));
    println!("\nFigure 1(b) — buffer, rise 2 / fall 0.5: {}", slow_rise);
    let pulse = Waveform::from_steps(false, &[(t(1.0), true), (t(6.0), false)]);
    let read_pulse = |_: usize, at: Time| pulse.value_at(at);
    show_waveform("input pulse", &Tbf::signal(0), Time::UNIT, &read_pulse);
    show_waveform("buffered", &slow_rise, Time::UNIT, &read_pulse);
    println!("  (the rising edge is delayed by 2, the falling edge by 0.5)");

    // ---- (c) OR gate with per-pin rise/fall delays ---------------------
    let or_gate = Tbf::gate(
        GateKind::Or,
        vec![Tbf::signal(0), Tbf::signal(1)],
        &[PinDelay::new(t(1.0), t(2.0)), PinDelay::new(t(4.0), t(3.0))],
    );
    println!("\nFigure 1(c) — OR with per-pin rise/fall: {}", or_gate);

    // ---- (d) the flip-flop sampling operator --------------------------
    let q = Tbf::sampled(Tbf::signal(0), t(0.0));
    println!("\nFigure 1(d) — D flip-flop: {}", q);
    let data = Waveform::from_steps(false, &[(t(0.7), true), (t(4.2), false), (t(8.4), true)]);
    let read_data = |_: usize, at: Time| data.value_at(at);
    let period = t(2.0);
    show_waveform("D (data)", &Tbf::signal(0), period, &read_data);
    show_waveform("Q (sampled @ P=2)", &q, period, &read_data);
    println!("  (Q only changes at clock edges — the floor operator is the memory)");
}
