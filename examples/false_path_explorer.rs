//! Explore the benchmark families: generate one circuit per mechanism,
//! compute its delay metrics and sequential bound, and cross-validate the
//! bound dynamically with the timing simulator.
//!
//! ```text
//! cargo run --release --example false_path_explorer
//! ```

use mct_suite::bdd::BddManager;
use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::delay;
use mct_suite::gen::families;
use mct_suite::netlist::{Circuit, FsmView, Time};
use mct_suite::sim::{functional_trace, DelayMode, SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

fn t(v: f64) -> Time {
    Time::from_f64(v)
}

fn analyze(label: &str, circuit: &Circuit) -> Result<(), Box<dyn std::error::Error>> {
    let view = FsmView::new(circuit)?;
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();
    let metrics = delay::compute_all(&view, &mut manager, &mut table)?;
    let report = MctAnalyzer::new(circuit)?.run(&MctOptions::paper())?;
    println!(
        "{label:<22} top {:>6} float {:>6} trans {:>6} | MCT ≤ {:>6.3}{}",
        metrics.topological.to_string(),
        metrics.floating.to_string(),
        metrics.transition.to_string(),
        report.mct_upper_bound,
        if report.mct_upper_bound + 1e-9 < metrics.floating.as_f64() {
            "  ← tighter than floating"
        } else {
            ""
        },
    );

    // Dynamic cross-check: just above the certified bound the machine must
    // track the functional model under random 90–100% delays and inputs.
    let period = Time::from_millis((report.mct_upper_bound * 1000.0) as i64 + 100);
    let sim = Simulator::new(circuit)?;
    for seed in 0..4 {
        let config = SimConfig::at_period(period)
            .with_cycles(48)
            .with_delay_mode(DelayMode::RandomUniform {
                min_factor_percent: 90,
                seed,
            });
        let ins = move |cycle: usize, i: usize| (cycle * 7 + i * 3 + seed as usize) % 5 < 2;
        let trace = sim.run(&config, ins);
        let (states, outputs) = functional_trace(circuit, 48, ins);
        assert!(
            trace.matches(&states, &outputs),
            "{label}: simulation diverged at certified-safe period {period} (seed {seed})"
        );
    }
    println!(
        "{:<22} simulation at τ = {period} matches the functional model ✓",
        ""
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("family                    delays                         sequential bound");
    println!("{}", "-".repeat(86));
    analyze("neutral: counter", &families::binary_counter(5, t(0.8)))?;
    analyze("neutral: lfsr", &families::lfsr(8, &[3, 7], t(1.5)))?;
    analyze(
        "periodic slack",
        &families::periodic_slack(t(1.5), t(4.0), t(5.0), 3),
    )?;
    analyze(
        "unreachable slack",
        &families::unreachable_slack(4, t(6.0), t(8.0)),
    )?;
    analyze(
        "comb false path",
        &families::comb_false_path(t(3.0), t(9.0), 3),
    )?;
    analyze("deep false path", &families::deep_false_path())?;
    println!();
    println!(
        "Planted mechanisms reproduce the paper's Table-1 row shapes: periodicity and \
         reachability make the sequential bound beat the floating delay, while plain \
         machines show no gap."
    );
    Ok(())
}
