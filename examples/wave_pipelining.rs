//! Multiple data waves on one wire: the s38584 phenomenon.
//!
//! The paper's most striking row is s38584, whose minimum cycle time (82.0)
//! is less than a *quarter* of its topological delay (378.4): when the
//! machine runs at that speed, several clock periods' worth of data are in
//! flight on the long paths simultaneously, and only a sequential analysis
//! can prove the interleaving harmless. A correct 2-vector bound can never
//! be tighter than half the topological delay (Theorem 2), so here it would
//! overstate the achievable cycle time by more than 200%.
//!
//! This example reproduces the phenomenon on the `deep_false_path` family
//! and *shows* the waves: the event-driven simulator counts how many
//! launched values are simultaneously travelling on the slow wire.
//!
//! ```text
//! cargo run --release --example wave_pipelining
//! ```

use mct_suite::bdd::BddManager;
use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::delay::{floating_delay, topological_delay};
use mct_suite::gen::families::deep_false_path;
use mct_suite::netlist::{FsmView, Time};
use mct_suite::sim::{functional_trace, SimConfig, Simulator};
use mct_suite::tbf::TimedVarTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = deep_false_path();
    let view = FsmView::new(&circuit)?;
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();

    let top = topological_delay(&view)?;
    let float = floating_delay(&view, &mut manager, &mut table)?;
    let report = MctAnalyzer::new(&circuit)?.run(&MctOptions::paper())?;
    let mct = report.mct_upper_bound;

    println!("deep false path machine ({}):", circuit.stats());
    println!("  topological delay   {top}");
    println!("  floating delay      {float}");
    println!("  certified MCT bound {mct:.2}");
    println!(
        "  → MCT is {:.1}× below the topological delay (paper's s38584: 4.6×)",
        top.as_f64() / mct
    );
    println!(
        "  → the best possible certified 2-vector bound, top/2 = {:.2}, would \
         overstate the cycle time by {:.0}%",
        top.as_f64() / 2.0,
        (top.as_f64() / 2.0 / mct - 1.0) * 100.0
    );
    println!();

    // Clock just above the bound and count in-flight waves on the slow wire:
    // with period τ and wire delay D, up to ⌈D/τ⌉ launches coexist.
    let period = Time::from_millis((mct * 1000.0) as i64 + 100);
    let sim = Simulator::new(&circuit)?;
    let cycles = 24;
    let trace = sim.run(&SimConfig::at_period(period).with_cycles(cycles), |_, _| {
        false
    });
    let (states, outputs) = functional_trace(&circuit, cycles, |_, _| false);
    let waves = (top.millis() + period.millis() - 1) / period.millis();
    println!("clocking at τ = {period}: up to {waves} data waves in flight on the slow path");
    println!(
        "  sampled behaviour over {cycles} cycles {} the functional model",
        if trace.matches(&states, &outputs) {
            "MATCHES ✓"
        } else {
            "diverges ✗"
        }
    );
    println!(
        "  ({} events delivered — the waves are real, just harmless)",
        trace.events_processed
    );
    Ok(())
}
