//! The paper's worked example, end to end: Example 1 (flattening the
//! Figure-2 circuit into a Timed Boolean Function) and Example 2 (its exact
//! minimum cycle time of 2.5 versus a floating delay of 4 and an incorrect
//! 2-vector delay of 2).
//!
//! ```text
//! cargo run --example paper_example
//! ```

use mct_suite::bdd::BddManager;
use mct_suite::core::{MctAnalyzer, MctOptions};
use mct_suite::delay::{floating_delay, theorem2_applicable, topological_delay, transition_delay};
use mct_suite::gen::paper_figure2;
use mct_suite::netlist::FsmView;
use mct_suite::tbf::{Tbf, TimedVarTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Example 1: the flattened TBF --------------------------------
    // Flatten the Figure-2 gate network into its two-level TBF directly
    // from the netlist, exactly as the paper's Example 1 does by hand.
    let circuit_for_tbf = paper_figure2();
    let view_for_tbf = FsmView::new(&circuit_for_tbf)?;
    let g_net = circuit_for_tbf.lookup("g").expect("figure 2 has gate g");
    let g: Tbf = mct_suite::tbf::circuit_tbf(&view_for_tbf, g_net, 10_000)?;
    println!("Example 1 — flattened TBF of Figure 2:");
    println!("  g(t) = {}", g.display_with(&["f"]));
    println!("  L (steady-state horizon) = {}", g.max_shift());
    println!();

    // ---- Example 2: delays and the minimum cycle time ----------------
    let circuit = paper_figure2();
    let view = FsmView::new(&circuit)?;
    let mut manager = BddManager::new();
    let mut table = TimedVarTable::new();

    let top = topological_delay(&view)?;
    let float = floating_delay(&view, &mut manager, &mut table)?;
    let trans = transition_delay(&view, &mut manager, &mut table)?;
    println!("Example 2 — delay metrics (paper values in parentheses):");
    println!("  topological delay      = {top}   (5)");
    println!("  floating / 1-vector    = {float}   (4)");
    println!("  transition / 2-vector  = {trans}   (2)");

    let report = MctAnalyzer::new(&circuit)?.run(&MctOptions {
        exhaustive_floor: Some(1.5),
        ..MctOptions::fixed_delays()
    })?;
    println!(
        "  minimum cycle time     = {}   (2.5)",
        report.mct_upper_bound
    );
    println!();

    println!("Candidate periods examined (the paper lists 4, 2.5, 2, 5/3 …):");
    for region in &report.regions {
        println!(
            "  τ ∈ [{:.3}, {:.3}) : {}",
            region.tau_lo,
            region.tau_hi,
            if region.valid { "valid" } else { "INVALID" }
        );
    }
    println!();

    // Theorem 2: the 2-vector delay of 2 is below half the topological
    // delay of 5, so it is not certified — and indeed it is below the true
    // minimum cycle time.
    let certified = theorem2_applicable(trans, top);
    println!(
        "Theorem 2: transition delay {} {} half the topological delay {} → {}",
        trans,
        if certified { "≥" } else { "<" },
        top,
        if certified {
            "certified upper bound"
        } else {
            "NOT certified (and in fact incorrect: 2 < MCT 2.5)"
        }
    );
    Ok(())
}
