//! A walkthrough of the paper's Section 7: interval algebra over shift
//! sets, the Cartesian product Φ, feasibility of combinations, and the
//! final linear-program bound — all on the Figure-2 circuit with the
//! paper's 90–100% delay variation.
//!
//! ```text
//! cargo run --release --example interval_algebra
//! ```

use mct_suite::core::{BreakpointIter, MctAnalyzer, MctOptions, ShiftRange, SigmaIter};
use mct_suite::gen::paper_figure2;
use mct_suite::lp::Rat;
use mct_suite::netlist::{FsmView, NetId};
use mct_suite::tbf::ConeExtractor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = paper_figure2();
    let view = FsmView::new(&circuit)?;
    let extractor = ConeExtractor::new(&view);
    let sinks: Vec<NetId> = view.sinks().iter().map(|s| s.net).collect();
    let classes = extractor.delay_classes(&sinks)?;

    println!("Delay classes of Figure 2 (k_i, with 90–100% variation):");
    let intervals: Vec<(i64, i64)> = classes
        .iter()
        .map(|c| ((c.delay * 9).div_euclid(10), c.delay))
        .collect();
    for (class, &(lo, hi)) in classes.iter().zip(&intervals) {
        println!(
            "  leaf {:<2} k ∈ [{:.2}, {:.2}]  (path of {} gate pins)",
            class.leaf,
            lo as f64 / 1000.0,
            hi as f64 / 1000.0,
            class.path.len()
        );
    }
    println!();

    // Sweep the first several breakpoints and show the shift sets and the
    // feasible combinations of Φ at each.
    let l = intervals.iter().map(|&(_, hi)| hi).max().unwrap_or(0);
    let bp_delays: Vec<i64> = intervals.iter().flat_map(|&(lo, hi)| [lo, hi]).collect();
    println!("τ-axis subdivision (breakpoints {{kᵐⁱⁿ/j}} ∪ {{kᵐᵃˣ/j}}) and Φ(τ):");
    let mut prev: Option<Rat> = None;
    for b in BreakpointIter::new(&bp_delays, Rat::new(l, 3)).take(9) {
        let ranges: Vec<ShiftRange> = intervals
            .iter()
            .map(|&(lo, hi)| ShiftRange::at(lo, hi, b))
            .collect();
        let combos = SigmaIter::combination_count(&ranges);
        let feasible = SigmaIter::new(&ranges)
            .filter(|sigma| {
                mct_suite::core::feasible_tau_range(sigma, &intervals, b, prev).is_some()
            })
            .count();
        let sets: Vec<String> = ranges
            .iter()
            .map(|r| {
                if r.is_singleton() {
                    format!("{{{}}}", r.lo)
                } else {
                    format!("{{{}..{}}}", r.lo, r.hi)
                }
            })
            .collect();
        println!(
            "  τ ∈ [{:<7} …): shift sets {}  → {} combination(s), {} feasible",
            format!("{:.3}", b.as_f64() / 1000.0),
            sets.join(" × "),
            combos,
            feasible
        );
        prev = Some(b);
    }
    println!();

    // The final bounds, with and without the LP refinement.
    let closed = MctAnalyzer::new(&circuit)?.run(&MctOptions::paper())?;
    let lp = MctAnalyzer::new(&circuit)?.run(&MctOptions {
        path_coupled_lp: true,
        ..MctOptions::paper()
    })?;
    println!(
        "first failing interval starts at τ = {:.3}; D̄s = max over failing σ of τ(σ):",
        closed.first_failing_tau.unwrap_or(f64::NAN)
    );
    println!("  closed-form feasibility : {:.6}", closed.mct_upper_bound);
    println!(
        "  path-coupled LP         : {:.6}  (ε below — strict inequalities)",
        lp.mct_upper_bound
    );
    Ok(())
}
