//! Umbrella crate for the DAC 1994 *Exact Minimum Cycle Times for Finite
//! State Machines* reproduction.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! integration tests (and downstream users who want the whole toolkit) can
//! depend on a single crate. See the individual crates for details:
//!
//! * [`bdd`] — reduced ordered binary decision diagrams;
//! * [`netlist`] — gate-level circuits, delay models, ISCAS'89 parsing;
//! * [`tbf`] — Timed Boolean Functions and circuit discretization;
//! * [`delay`] — topological, floating, and transition delay engines;
//! * [`lp`] — interval algebra and the simplex feasibility solver;
//! * [`sim`] — event-driven timing simulation (the dynamic golden model);
//! * [`gen`] — benchmark circuit generation;
//! * [`core`] — the sequential minimum-cycle-time engine itself;
//! * [`fuzz`] — differential fuzzing with a simulator oracle, metamorphic
//!   checks, and a delta-debugging shrinker.
//!
//! # Examples
//!
//! ```
//! use mct_suite::gen::paper_figure2;
//! use mct_suite::core::{MctAnalyzer, MctOptions};
//!
//! let circuit = paper_figure2();
//! let report = MctAnalyzer::new(&circuit)
//!     .expect("figure-2 circuit is analyzable")
//!     .run(&MctOptions::default())
//!     .expect("analysis succeeds");
//! assert!((report.mct_upper_bound - 2.5).abs() < 1e-9);
//! ```

pub use mct_bdd as bdd;
pub use mct_core as core;
pub use mct_delay as delay;
pub use mct_fuzz as fuzz;
pub use mct_gen as gen;
pub use mct_lp as lp;
pub use mct_netlist as netlist;
pub use mct_sim as sim;
pub use mct_tbf as tbf;
